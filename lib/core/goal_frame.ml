(* Goal stacks and goal frames.

   Each worker owns a goal stack used for on-demand scheduling: the
   pusher adds frames at the top and pops its own work from the top;
   idle PEs steal from the bottom (oldest goal first, the coarsest
   granularity).  The stack is guarded by a single lock word; the top
   and bottom pointers live in memory so that remote PEs generate real
   traffic probing and updating them.

   Region layout: word 0 = lock, word 1 = top pointer, word 2 = bottom
   pointer, frames from word 3.

   Frame layout (base G, n = arity):
     G+0      total size (n+6)
     G+1      parcall frame address
     G+2      slot index
     G+3      code entry point
     G+4      arity
     G+5..5+n-1  argument cells
     G+5+n    total size again (trailer, for popping from the top)    *)

open Wam

let area = Trace.Area.Goal_frame

let frame_size arity = arity + 6

let lock_word pe = Layout.goal_base pe
let top_word pe = Layout.goal_base pe + 1
let bot_word pe = Layout.goal_base pe + 2
let frames_base pe = Layout.goal_base pe + 3

let rd m (w : Machine.worker) addr = Memory.read m.Machine.mem ~pe:w.id ~area addr
let wr m (w : Machine.worker) addr v = Memory.write m.Machine.mem ~pe:w.id ~area addr v
let sync m (w : Machine.worker) ~kind addr =
  Memory.sync m.Machine.mem ~pe:w.id ~kind addr

(* Lock traffic model: one read + one write to acquire, one write to
   release, charged to the accessing PE.  Acquire/Release events
   bracket the section for the happens-before checker. *)
let with_lock m w ~owner f =
  sync m w ~kind:Trace.Ref_record.Acquire (lock_word owner);
  ignore (rd m w (lock_word owner));
  wr m w (lock_word owner) (Cell.raw 1);
  let v = f () in
  wr m w (lock_word owner) (Cell.raw 0);
  sync m w ~kind:Trace.Ref_record.Release (lock_word owner);
  v

type goal = {
  pf : int;
  slot : int;
  entry : int;
  arity : int;
  args : int array;
  pusher : int; (* PE that pushed the frame *)
}

(* Push a goal whose arguments sit in the pusher's A1..An. *)
let push m (w : Machine.worker) ~pf ~slot ~entry ~arity =
  let size = frame_size arity in
  if w.gs_top + size > Layout.goal_limit w.id then
    Machine.runtime_error "goal stack overflow (PE %d)" w.id;
  with_lock m w ~owner:w.id (fun () ->
      let base = w.gs_top in
      wr m w base (Cell.raw size);
      wr m w (base + 1) (Cell.raw pf);
      wr m w (base + 2) (Cell.raw slot);
      wr m w (base + 3) (Cell.raw entry);
      wr m w (base + 4) (Cell.raw arity);
      for i = 0 to arity - 1 do
        wr m w (base + 5 + i) w.x.(i + 1)
      done;
      wr m w (base + 5 + arity) (Cell.raw size);
      w.gs_top <- base + size;
      wr m w (top_word w.id) (Cell.raw w.gs_top);
      (* the frame (and the parcall frame it references) is now
         visible to stealing PEs *)
      sync m w ~kind:Trace.Ref_record.Publish base);
  Machine.note_high_water w;
  m.Machine.goals_pushed <- m.Machine.goals_pushed + 1

let read_frame m (w : Machine.worker) ~owner base =
  let pf = Cell.payload (rd m w (base + 1)) in
  let slot = Cell.payload (rd m w (base + 2)) in
  let entry = Cell.payload (rd m w (base + 3)) in
  let arity = Cell.payload (rd m w (base + 4)) in
  let args = Array.init arity (fun i -> rd m w (base + 5 + i)) in
  { pf; slot; entry; arity; args; pusher = owner }

(* After consuming frames, reclaim the region once it drains. *)
let normalize m (w : Machine.worker) (victim : Machine.worker) =
  if victim.gs_top = victim.gs_bot then begin
    victim.gs_top <- frames_base victim.id;
    victim.gs_bot <- frames_base victim.id;
    wr m w (top_word victim.id) (Cell.raw victim.gs_top);
    wr m w (bot_word victim.id) (Cell.raw victim.gs_bot)
  end

(* Pop the newest frame from [victim]'s stack, charging traffic to the
   accessing worker [w] (the two coincide for an own pop). *)
let pop_top m (w : Machine.worker) (victim : Machine.worker) =
  if victim.gs_top = victim.gs_bot then None
  else
    Some
      (with_lock m w ~owner:victim.id (fun () ->
           let size = Cell.payload (rd m w (victim.gs_top - 1)) in
           let base = victim.gs_top - size in
           if w.id <> victim.id then
             sync m w ~kind:Trace.Ref_record.Steal base;
           let goal = read_frame m w ~owner:victim.id base in
           victim.gs_top <- base;
           wr m w (top_word victim.id) (Cell.raw victim.gs_top);
           normalize m w victim;
           goal))

(* Pop the newest frame from the worker's own stack. *)
let pop_own m (w : Machine.worker) = pop_top m w w

(* Steal the newest frame instead of the oldest (ablation policy). *)
let pop_newest m (w : Machine.worker) (victim : Machine.worker) =
  pop_top m w victim

(* Steal the oldest frame from [victim]'s stack, charging the traffic
   to the thief [w]. *)
let steal m (w : Machine.worker) (victim : Machine.worker) =
  if victim.gs_top = victim.gs_bot then None
  else
    Some
      (with_lock m w ~owner:victim.id (fun () ->
           let base = victim.gs_bot in
           sync m w ~kind:Trace.Ref_record.Steal base;
           let size = Cell.payload (rd m w base) in
           let goal = read_frame m w ~owner:victim.id base in
           victim.gs_bot <- base + size;
           wr m w (bot_word victim.id) (Cell.raw victim.gs_bot);
           normalize m w victim;
           goal))

(* Untraced probe used by idle PEs scanning for work. *)
let has_work (victim : Machine.worker) = victim.gs_top > victim.gs_bot

(* Peek the parcall frame of the newest own frame without popping
   (untraced; used to discard goals of failed parcalls). *)
let peek_top_pf m (w : Machine.worker) =
  if w.gs_top = w.gs_bot then None
  else begin
    let size = Cell.payload (Memory.peek m.Machine.mem (w.gs_top - 1)) in
    let base = w.gs_top - size in
    Some (Cell.payload (Memory.peek m.Machine.mem (base + 1)))
  end
