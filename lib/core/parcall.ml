(* Parcall frames.

   A parcall frame coordinates one CGE instance: it is pushed on the
   parent's local stack by alloc_parcall and holds the goal counters
   (decremented under lock as goals check in), the failure status, the
   recovery state for backward execution, and per-slot bookkeeping.

   Layout (base PF, k = number of parallel goals):
     PF+0   k                 Parcall_local
     PF+1   lock              Parcall_count
     PF+2   counter           Parcall_count   goals not yet checked in
     PF+3   status            Parcall_count   0 = ok, 1 = some goal failed
     PF+4   acks              Parcall_count   unwind acknowledgements
     PF+5   parent PE         Parcall_global
     PF+6   prev PF           Parcall_local
     PF+7   saved B           Parcall_local
     PF+8   saved TR          Parcall_local
     PF+9   saved H           Parcall_local
     PF+10  saved CST         Parcall_local
     PF+11  join address      Parcall_local   (inline-goal failure target)
     PF+12  saved barrier     Parcall_local
     PF+13  saved HB          Parcall_local
     PF+14  saved PROT        Parcall_local
     PF+15..15+k-1    executor word per slot               Parcall_global
                      (-1 pending; pe while running; pe+done_bit when
                      checked in)

   [k] counts only the PUSHED goals: the parent executes the CGE's
   first goal inline (the thesis scheme), so a k-ary CGE pushes k-1
   goal frames and waits on a counter of k-1.  The frame also acts as
   a backtrack barrier: alloc sets the worker's barrier to the current
   B so an inline-goal failure surfaces as No_more_choices and is
   redirected to the join address. *)

open Wam

let off_k = 0
let off_lock = 1
let off_counter = 2
let off_status = 3
let off_acks = 4
let off_parent = 5
let off_prev_pf = 6
let off_saved_b = 7
let off_saved_tr = 8
let off_saved_h = 9
let off_saved_cst = 10
let off_join = 11
let off_saved_barrier = 12
let off_saved_hb = 13
let off_saved_prot = 14
let off_slots = 15

let done_bit = 4096

let size k = off_slots + k

let local_area = Trace.Area.Parcall_local
let count_area = Trace.Area.Parcall_count
let global_area = Trace.Area.Parcall_global

let rd m (w : Machine.worker) ~area addr = Memory.read m.Machine.mem ~pe:w.id ~area addr
let wr m (w : Machine.worker) ~area addr v = Memory.write m.Machine.mem ~pe:w.id ~area addr v
let sync m (w : Machine.worker) ~kind addr =
  Memory.sync m.Machine.mem ~pe:w.id ~kind addr

(* Allocate a frame on [w]'s local stack and make it current; the
   frame becomes the worker's backtrack barrier until the join. *)
let alloc m (w : Machine.worker) k ~join_addr =
  let base = max w.lst w.prot_lst in
  if base + size k > Layout.local_limit w.id then
    Machine.runtime_error "local stack overflow (parcall, PE %d)" w.id;
  let wl off v = wr m w ~area:local_area (base + off) (Cell.raw v) in
  let wc off v = wr m w ~area:count_area (base + off) (Cell.raw v) in
  let wg off v = wr m w ~area:global_area (base + off) (Cell.raw v) in
  wl off_k k;
  wc off_lock 0;
  wc off_counter k;
  wc off_status 0;
  wc off_acks 0;
  wg off_parent w.id;
  wl off_prev_pf w.pf;
  wl off_saved_b w.b;
  wl off_saved_tr w.tr;
  wl off_saved_h w.h;
  wl off_saved_cst w.cst;
  wl off_join join_addr;
  wl off_saved_barrier w.barrier;
  wl off_saved_hb w.hb;
  wl off_saved_prot w.prot_lst;
  for i = 0 to k - 1 do
    wg (off_slots + i) (-1)
  done;
  (* the frame is now fully initialized and about to become visible to
     other PEs through pushed goal frames *)
  sync m w ~kind:Trace.Ref_record.Publish base;
  w.pf <- base;
  w.barrier <- w.b;
  w.lst <- base + size k;
  (* the frame is a recovery point: bindings to anything older must be
     trailed so the failure protocol can undo them.  The par_* floors
     keep choice-point pops inside the CGE from restoring the trail
     condition below the frame (exec clamps against them). *)
  w.prot_lst <- w.lst;
  w.hb <- w.h;
  w.par_prot <- w.lst;
  w.par_hb <- w.h;
  Machine.note_high_water w;
  m.Machine.parcalls <- m.Machine.parcalls + 1;
  base

(* Field reads; [peek_*] versions are untraced and used only for the
   spin-wait polls that the paper does not count as work. *)
let k m w pf = Cell.payload (rd m w ~area:local_area (pf + off_k))
let counter m w pf = Cell.payload (rd m w ~area:count_area (pf + off_counter))
let status m w pf = Cell.payload (rd m w ~area:count_area (pf + off_status))
let parent m w pf = Cell.payload (rd m w ~area:global_area (pf + off_parent))
let prev_pf m w pf = Cell.payload (rd m w ~area:local_area (pf + off_prev_pf))
let saved_b m w pf = Cell.payload (rd m w ~area:local_area (pf + off_saved_b))
let saved_tr m w pf = Cell.payload (rd m w ~area:local_area (pf + off_saved_tr))
let saved_h m w pf = Cell.payload (rd m w ~area:local_area (pf + off_saved_h))
let saved_cst m w pf = Cell.payload (rd m w ~area:local_area (pf + off_saved_cst))
let join_addr m w pf = Cell.payload (rd m w ~area:local_area (pf + off_join))
let saved_barrier m w pf =
  Cell.payload (rd m w ~area:local_area (pf + off_saved_barrier))
let saved_hb m w pf = Cell.payload (rd m w ~area:local_area (pf + off_saved_hb))
let saved_prot m w pf =
  Cell.payload (rd m w ~area:local_area (pf + off_saved_prot))

let peek m pf off = Cell.payload (Memory.peek m.Machine.mem (pf + off))
let peek_counter m pf = peek m pf off_counter
let peek_status m pf = peek m pf off_status
let peek_acks m pf = peek m pf off_acks
let peek_k m pf = peek m pf off_k
let peek_slot_exec m pf i = peek m pf (off_slots + i)

let slot_exec m w pf i =
  Cell.payload (rd m w ~area:global_area (pf + off_slots + i))

let set_slot_exec m w pf i pe =
  wr m w ~area:global_area (pf + off_slots + i) (Cell.raw pe)

(* Mark a slot's executor word as checked in (read-modify-write). *)
let set_slot_done m w pf i =
  let v = Cell.payload (rd m w ~area:global_area (pf + off_slots + i)) in
  let v' = if v >= 0 && v < done_bit then v + done_bit else v in
  wr m w ~area:global_area (pf + off_slots + i) (Cell.raw v')

(* Decode an executor word: (pe, started, done). *)
let decode_slot v =
  if v < 0 then (-1, false, false)
  else if v >= done_bit then (v - done_bit, true, true)
  else (v, true, false)

(* Locked read-modify-write: the lock acquire/release traffic is
   modeled as one read and two writes on the lock word.  The explicit
   Acquire/Release events bracket the critical section so the trace
   checker can order cross-PE counter updates. *)
let locked_update m w pf ~off f =
  sync m w ~kind:Trace.Ref_record.Acquire (pf + off_lock);
  ignore (rd m w ~area:count_area (pf + off_lock)); (* acquire: test *)
  wr m w ~area:count_area (pf + off_lock) (Cell.raw 1); (* acquire: set *)
  let v = Cell.payload (rd m w ~area:count_area (pf + off)) in
  let v' = f v in
  wr m w ~area:count_area (pf + off) (Cell.raw v');
  wr m w ~area:count_area (pf + off_lock) (Cell.raw 0); (* release *)
  sync m w ~kind:Trace.Ref_record.Release (pf + off_lock);
  v'

(* A goal checks in: decrement the counter (optionally raising the
   failure status first). *)
let check_in m w pf ~failed ~slot =
  if failed then ignore (locked_update m w pf ~off:off_status (fun _ -> 1));
  set_slot_done m w pf slot;
  locked_update m w pf ~off:off_counter (fun c -> c - 1)

let ack m w pf = ignore (locked_update m w pf ~off:off_acks (fun a -> a + 1))
