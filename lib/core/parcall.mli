(** Parcall frames: the per-CGE coordination record pushed on the
    parent's local stack (paper, Table 1 rows "Parcall F./*").

    A frame holds the locked goal counter decremented as goals check
    in, the failure status, per-slot executor words, recovery state for
    backward execution, and the join address.  [k] counts only the
    PUSHED goals: the parent runs the CGE's first goal inline, so a
    k-ary CGE pushes k-1 goal frames.  Allocating a frame also makes it
    the worker's backtrack barrier. *)

val size : int -> int
(** Frame size in words for [k] pushed goals. *)

val off_lock : int
(** The lock word; Acquire/Release and Join sync events reference it. *)

val off_status : int
val off_slots : int
val done_bit : int

val alloc : Wam.Machine.t -> Wam.Machine.worker -> int -> join_addr:int -> int
(** Allocate a frame for [k] pushed goals; returns its address and
    sets the worker's PF, barrier and protection floors. *)

(** {1 Traced field access} *)

val k : Wam.Machine.t -> Wam.Machine.worker -> int -> int
val counter : Wam.Machine.t -> Wam.Machine.worker -> int -> int
val status : Wam.Machine.t -> Wam.Machine.worker -> int -> int
val parent : Wam.Machine.t -> Wam.Machine.worker -> int -> int
val prev_pf : Wam.Machine.t -> Wam.Machine.worker -> int -> int
val saved_b : Wam.Machine.t -> Wam.Machine.worker -> int -> int
val saved_tr : Wam.Machine.t -> Wam.Machine.worker -> int -> int
val saved_h : Wam.Machine.t -> Wam.Machine.worker -> int -> int
val saved_cst : Wam.Machine.t -> Wam.Machine.worker -> int -> int
val join_addr : Wam.Machine.t -> Wam.Machine.worker -> int -> int
val saved_barrier : Wam.Machine.t -> Wam.Machine.worker -> int -> int

val saved_hb : Wam.Machine.t -> Wam.Machine.worker -> int -> int
(** Trail-condition heap boundary at frame allocation; restored when
    the join commits so determinate code does not keep over-trailing
    against a dead recovery point. *)

val saved_prot : Wam.Machine.t -> Wam.Machine.worker -> int -> int
(** Local-stack protection floor at frame allocation (same role). *)

val slot_exec : Wam.Machine.t -> Wam.Machine.worker -> int -> int -> int
val set_slot_exec : Wam.Machine.t -> Wam.Machine.worker -> int -> int -> int -> unit
val set_slot_done : Wam.Machine.t -> Wam.Machine.worker -> int -> int -> unit

val decode_slot : int -> int * bool * bool
(** Executor word -> (pe, started, done). *)

(** {1 Untraced polls} (spin waits; not counted as work) *)

val peek_counter : Wam.Machine.t -> int -> int
val peek_status : Wam.Machine.t -> int -> int
val peek_acks : Wam.Machine.t -> int -> int
val peek_k : Wam.Machine.t -> int -> int
val peek_slot_exec : Wam.Machine.t -> int -> int -> int

(** {1 Locked operations} (modeled as 1 read + 2 writes on the lock) *)

val locked_update :
  Wam.Machine.t -> Wam.Machine.worker -> int -> off:int -> (int -> int) -> int

val check_in :
  Wam.Machine.t -> Wam.Machine.worker -> int -> failed:bool -> slot:int -> int
(** A goal checks in: raise the failure status if [failed], mark the
    slot done, decrement the counter; returns the new counter. *)

val ack : Wam.Machine.t -> Wam.Machine.worker -> int -> unit
(** Acknowledge an unwind request. *)
