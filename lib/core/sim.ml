(* The RAP-WAM multi-worker simulator.

   Workers execute one instruction per scheduler round (deterministic
   round-robin interleaving), producing an interleaved, tagged memory
   trace.  Spin-wait polls by Waiting/Idle workers are performed with
   untraced peeks: the paper's "work" metric counts only references
   made while doing actual processing, so busy-wait traffic (which a
   real PE would satisfy from its cache anyway) is excluded and
   accounted as wait/idle cycles instead.

   Forward execution protocol (one CGE of k goals):
     alloc_parcall  push a parcall frame (wait count k-1), make it the
                    current PF and the backtrack barrier
     push_goal      copy A1..An into a goal frame on the own goal
                    stack, for each of goals 2..k
     (inline call)  the parent executes the CGE's first goal as a
                    plain call whose continuation is the join
     par_join       loop: pop & run own pending goals as plain calls
                    (Local_goal, no marker); wait for remote check-ins;
                    continue when the counter reaches zero
     goal_done      return point of popped/stolen goals: check in,
                    commit, resume (parent) or go idle (thief)

   Stolen goals run under an input marker (Section_ctx) that delimits
   the section on the thief's stack set; goals the parent runs itself
   are ordinary calls, which keeps 1-PE RAP-WAM work close to the
   sequential WAM (and makes total work grow with the number of PEs as
   more goals are actually stolen -- the paper's Figure 2 behaviour).

   Backward execution: a failing goal marks the parcall failed and
   checks in; the parent (at par_join) drains unexecuted goals, asks
   remote executors to unwind their sections (messages, selective
   trail replay, acks), restores its own state from the parcall frame
   and fails past the CGE.  Backtracking into a parcall that already
   succeeded is not retried (remote goals are committed): the
   conservative reading of restricted backward semantics. *)

open Wam

type steal_policy = Steal_oldest | Steal_newest

type t = {
  m : Machine.t;
  queues : Messages.queues;
  mutable rounds : int;
  mutable stagnant : int; (* consecutive rounds with no Running worker *)
  steal : steal_policy;
  eager_kill : bool; (* send kill messages on parcall failure *)
  allow_steal : bool;
  memory : Memmodel.t option; (* integrated two-level memory timing *)
}

let create ?out ?(sink = Trace.Sink.null) ?(steal = Steal_oldest)
    ?(eager_kill = false) ?(allow_steal = true) ?memory ~n_workers prog =
  let sink =
    match memory with
    | None -> sink
    | Some mm -> Trace.Sink.tee sink (Memmodel.sink mm)
  in
  let m =
    Machine.create ?out ~sink ~n_workers ~code:prog.Program.code
      ~symbols:prog.Program.symbols ()
  in
  {
    m;
    queues = Messages.create_queues n_workers;
    rounds = 0;
    stagnant = 0;
    steal;
    eager_kill;
    allow_steal;
    memory;
  }

(* ------------------------------------------------------------------ *)
(* Goal lifecycle.                                                    *)

(* A goal the parent pops from its own goal stack runs as a plain call
   (no marker): the cheap local path. *)
let start_local_goal sim (w : Machine.worker) (goal : Goal_frame.goal)
    ~resume =
  let m = sim.m in
  Exec.abandon_shallow m w;
  Parcall.set_slot_exec m w goal.pf goal.slot w.id;
  w.exec_stack <-
    Machine.Local_goal
      { parcall = goal.pf; slot = goal.slot; resume; entry_b = w.b }
    :: w.exec_stack;
  for i = 0 to goal.arity - 1 do
    w.x.(i + 1) <- goal.args.(i)
  done;
  w.nargs <- goal.arity;
  w.cp <- Compile.goal_done_addr;
  w.b0 <- w.b;
  w.p <- goal.entry;
  w.status <- Machine.Running;
  m.Machine.inferences <- m.Machine.inferences + 1

(* A stolen goal runs under an input marker delimiting its section on
   the thief's stack set. *)
let start_stolen_goal sim (w : Machine.worker) (goal : Goal_frame.goal) =
  let m = sim.m in
  Exec.abandon_shallow m w;
  Parcall.set_slot_exec m w goal.pf goal.slot w.id;
  let marker = Marker.push m w ~pf:goal.pf ~slot:goal.slot ~resume_p:(-1) in
  let ctx =
    {
      Machine.marker_addr = marker;
      barrier_b = w.b;
      floor_cst = w.cst;
      floor_lst = w.lst;
      parcall = goal.pf;
      slot = goal.slot;
    }
  in
  w.exec_stack <- Machine.Section_ctx ctx :: w.exec_stack;
  w.barrier <- w.b;
  w.cst_floor <- w.cst;
  w.lst_floor <- w.lst;
  w.hb <- w.h;
  w.prot_lst <- w.lst;
  for i = 0 to goal.arity - 1 do
    w.x.(i + 1) <- goal.args.(i)
  done;
  w.nargs <- goal.arity;
  w.e <- -1;
  w.cp <- Compile.goal_done_addr;
  w.b0 <- w.b;
  w.pf <- -1;
  w.p <- goal.entry;
  w.status <- Machine.Running;
  m.Machine.inferences <- m.Machine.inferences + 1;
  m.Machine.goals_stolen <- m.Machine.goals_stolen + 1

(* Completion (the Goal_done instruction). *)
let goal_done sim (w : Machine.worker) =
  let m = sim.m in
  match w.exec_stack with
  | [] | Machine.Parcall_pending _ :: _ ->
    Machine.runtime_error "goal_done outside a parallel goal (PE %d)" w.id
  | Machine.Local_goal { parcall; slot; resume; entry_b } :: rest ->
    w.exec_stack <- rest;
    ignore (Parcall.check_in m w parcall ~failed:false ~slot);
    (* commit: cut the local goal's leftover choice points so its
       alternatives match the committed remote goals *)
    if w.b <> entry_b then w.b <- entry_b;
    w.p <- resume
  | Machine.Section_ctx ctx :: rest ->
    let marker = ctx.Machine.marker_addr in
    (* remember the section's trail segment for selective unwinding *)
    let tr_start = Marker.saved_tr m w marker in
    w.sections <-
      (ctx.Machine.parcall, ctx.Machine.slot, tr_start, w.tr) :: w.sections;
    ignore
      (Parcall.check_in m w ctx.Machine.parcall ~failed:false
         ~slot:ctx.Machine.slot);
    w.b <- Marker.saved_b m w marker;
    Marker.restore_continuation m w marker;
    (* leaving the section: parcall floors of frames allocated inside
       it (all joined or torn down) no longer apply *)
    w.par_hb <- w.hb;
    w.par_prot <- w.prot_lst;
    w.exec_stack <- rest;
    w.status <- Machine.Idle

(* Total-failure dispatch (No_more_choices). *)
let total_failure sim (w : Machine.worker) =
  let m = sim.m in
  (* a torn-down context must not leave a live shallow frame behind *)
  Exec.abandon_shallow m w;
  match w.exec_stack with
  | [] ->
    (* the root query has no alternatives left *)
    m.Machine.failed <- true;
    w.status <- Machine.Halted
  | Machine.Parcall_pending pf :: _ ->
    (* the CGE's inline goal failed: mark the parcall failed and let
       the join run the failure protocol (entry popped on recovery) *)
    ignore
      (Parcall.locked_update m w pf ~off:Parcall.off_status (fun _ -> 1));
    w.p <- Parcall.join_addr m w pf;
    w.status <- Machine.Running
  | Machine.Local_goal { parcall; slot; resume; entry_b = _ } :: rest ->
    (* a locally-run pushed goal failed: its bindings are undone by the
       parent's recovery untrail (same trail); just check in *)
    w.exec_stack <- rest;
    ignore (Parcall.check_in m w parcall ~failed:true ~slot);
    w.p <- resume;
    w.status <- Machine.Running
  | Machine.Section_ctx ctx :: rest ->
    let marker = ctx.Machine.marker_addr in
    Exec.untrail_to m w (Marker.saved_tr m w marker);
    w.h <- Marker.saved_h m w marker;
    w.lst <- Marker.saved_lst m w marker;
    w.b <- Marker.saved_b m w marker;
    Marker.restore_continuation m w marker;
    w.par_hb <- w.hb;
    w.par_prot <- w.prot_lst;
    w.cst <- marker;
    w.exec_stack <- rest;
    ignore
      (Parcall.check_in m w ctx.Machine.parcall ~failed:true
         ~slot:ctx.Machine.slot);
    w.status <- Machine.Idle

(* ------------------------------------------------------------------ *)
(* Messages.                                                          *)

(* Selective unwind: replay (reset) the trail segment of a completed
   section without recovering its stack space. *)
let unwind_section sim (w : Machine.worker) pf slot =
  let m = sim.m in
  let rec find acc = function
    | [] -> (None, List.rev acc)
    | ((spf, sslot, _, _) as s) :: rest when spf = pf && sslot = slot ->
      (Some s, List.rev_append acc rest)
    | s :: rest -> find (s :: acc) rest
  in
  let found, remaining = find [] w.sections in
  w.sections <- remaining;
  match found with
  | None -> () (* section already gone (the goal itself failed) *)
  | Some (_, _, tr_start, tr_end) ->
    for pos = tr_start to tr_end - 1 do
      let entry =
        Memory.read m.Machine.mem ~pe:w.id ~area:Trace.Area.Trail pos
      in
      let a = Cell.payload entry in
      Memory.write_auto m.Machine.mem ~pe:w.id a (Cell.ref_ a)
    done

let process_message sim (w : Machine.worker) =
  let m = sim.m in
  let msg = Messages.receive m sim.queues w in
  match msg.Messages.kind with
  | Messages.Unwind ->
    unwind_section sim w msg.Messages.pf msg.Messages.slot;
    Parcall.ack m w msg.Messages.pf
  | Messages.Kill -> begin
    (* abort the current goal iff it belongs to the failed parcall *)
    match w.exec_stack with
    | Machine.Section_ctx ctx :: _ when ctx.Machine.parcall = msg.Messages.pf
      ->
      total_failure sim w
    | Machine.Local_goal { parcall; _ } :: _ when parcall = msg.Messages.pf
      ->
      total_failure sim w
    | _ :: _ | [] -> ()
  end

(* ------------------------------------------------------------------ *)
(* The parcall join.                                                  *)

let discard_own_goals_of sim (w : Machine.worker) pf =
  let m = sim.m in
  let rec go () =
    match Goal_frame.peek_top_pf m w with
    | Some p when p = pf -> begin
      match Goal_frame.pop_own m w with
      | Some goal ->
        ignore (Parcall.check_in m w pf ~failed:false ~slot:goal.slot);
        go ()
      | None -> ()
    end
    | Some _ | None -> ()
  in
  go ()

(* Slots a failing parent must ask other PEs to unwind: started on a
   remote PE (running or done). *)
let unwind_targets m (w : Machine.worker) pf ~peek =
  let k = Parcall.peek_k m pf in
  let targets = ref [] in
  for i = 0 to k - 1 do
    let v =
      if peek then
        Cell.payload (Memory.peek m.Machine.mem (pf + Parcall.off_slots + i))
      else Parcall.slot_exec m w pf i
    in
    let pe, started, _done = Parcall.decode_slot v in
    if started && pe <> w.id then targets := (i, pe) :: !targets
  done;
  List.rev !targets

(* Pop the Parcall_pending entry for [pf] (it must be on top). *)
let pop_pending (w : Machine.worker) pf =
  match w.exec_stack with
  | Machine.Parcall_pending p :: rest when p = pf -> w.exec_stack <- rest
  | _ :: _ | [] ->
    Machine.runtime_error "parcall frame %d is not the current context" pf

let handle_parcall_failure sim (w : Machine.worker) pf ~join_addr =
  let m = sim.m in
  if w.failing_pf <> pf then begin
    (* initiate: ask remote executors to unwind their sections *)
    let targets = unwind_targets m w pf ~peek:false in
    List.iter
      (fun (slot, pe) ->
        Messages.send m sim.queues w ~target:pe
          { Messages.kind = Messages.Unwind; pf; slot })
      targets;
    w.failing_pf <- pf;
    w.p <- join_addr;
    w.status <- Machine.Waiting
  end
  else begin
    let expected = List.length (unwind_targets m w pf ~peek:true) in
    if Parcall.peek_acks m pf >= expected then begin
      (* all remote executors acknowledged their unwinds (locked
         updates on the frame): joining here orders the recovery
         reads/writes after the remote trail replays *)
      Memory.sync m.Machine.mem ~pe:w.id ~kind:Trace.Ref_record.Join
        (pf + Parcall.off_lock);
      w.failing_pf <- -1;
      (* parent recovery from the parcall frame *)
      let saved_tr = Parcall.saved_tr m w pf in
      Exec.untrail_to m w saved_tr;
      w.h <- Parcall.saved_h m w pf;
      w.b <- Parcall.saved_b m w pf;
      w.cst <- Parcall.saved_cst m w pf;
      w.barrier <- Parcall.saved_barrier m w pf;
      w.pf <- Parcall.prev_pf m w pf;
      (* the dead frame's recovery floors no longer apply *)
      w.hb <- Parcall.saved_hb m w pf;
      w.prot_lst <- Parcall.saved_prot m w pf;
      w.par_hb <- w.hb;
      w.par_prot <- w.prot_lst;
      w.lst <- pf;
      pop_pending w pf;
      (* sections whose trail was just unwound are gone *)
      w.sections <-
        List.filter (fun (_, _, ts, _) -> ts < saved_tr) w.sections;
      w.status <- Machine.Running;
      try Exec.fail m w with Exec.No_more_choices _ -> total_failure sim w
    end
    else begin
      w.p <- join_addr;
      w.status <- Machine.Waiting
    end
  end

let par_join sim (w : Machine.worker) =
  let m = sim.m in
  let pf = w.pf in
  if pf = -1 then Machine.runtime_error "par_join without a parcall frame";
  let join_addr = w.p - 1 in
  let counter = Parcall.peek_counter m pf in
  let status = Parcall.peek_status m pf in
  if counter = 0 then begin
    (* every goal checked in (locked counter updates): the join edge
       orders the parent's confirmation reads -- and, on failure, its
       traced slot-word reads -- after the children's check-ins *)
    Memory.sync m.Machine.mem ~pe:w.id ~kind:Trace.Ref_record.Join
      (pf + Parcall.off_lock);
    if status = 0 then begin
      (* commit: traced confirmation reads, restore PF and barrier.
         The CGE commits as a unit: choice points its goals left
         (including the inline goal's) are cut away, so backtracking
         never re-enters a completed parcall -- the conservative
         restricted backward semantics. *)
      ignore (Parcall.counter m w pf);
      ignore (Parcall.status m w pf);
      w.barrier <- Parcall.saved_barrier m w pf;
      w.pf <- Parcall.prev_pf m w pf;
      let saved_b = Parcall.saved_b m w pf in
      if w.b <> saved_b then w.b <- saved_b;
      (* the frame is no longer a recovery point: drop the trail
         condition (and the parcall floors) back to what the enclosing
         recovery state needs, else determinate code keeps trailing
         against it forever *)
      let hb = Parcall.saved_hb m w pf in
      let prot = Parcall.saved_prot m w pf in
      w.hb <- hb;
      w.prot_lst <- prot;
      w.par_hb <- hb;
      w.par_prot <- prot;
      pop_pending w pf
      (* fall through: w.p already points past the join *)
    end
    else handle_parcall_failure sim w pf ~join_addr
  end
  else if status = 1 then begin
    discard_own_goals_of sim w pf;
    if sim.eager_kill then begin
      (* ask running executors to abandon their goals *)
      let k = Parcall.peek_k m pf in
      for i = 0 to k - 1 do
        let v =
          Cell.payload
            (Memory.peek m.Machine.mem (pf + Parcall.off_slots + i))
        in
        let pe, started, done_ = Parcall.decode_slot v in
        if started && (not done_) && pe <> w.id then
          Messages.send m sim.queues w ~target:pe
            { Messages.kind = Messages.Kill; pf; slot = i }
      done
    end;
    w.p <- join_addr (* loop until the counter drains *)
  end
  else begin
    match Goal_frame.pop_own m w with
    | Some goal ->
      if Parcall.peek_status m goal.Goal_frame.pf = 1 then begin
        (* pending goal of an already-failed parcall: discard *)
        ignore
          (Parcall.check_in m w goal.Goal_frame.pf ~failed:false
             ~slot:goal.Goal_frame.slot);
        w.p <- join_addr (* loop *)
      end
      else start_local_goal sim w goal ~resume:join_addr
    | None ->
      w.p <- join_addr;
      w.status <- Machine.Waiting;
      w.wait_cycles <- w.wait_cycles + 1
  end

(* Untraced wake-up test for a worker waiting at a par_join. *)
let join_actionable sim (w : Machine.worker) =
  let m = sim.m in
  let pf = w.pf in
  if pf = -1 then true
  else begin
    let counter = Parcall.peek_counter m pf in
    let status = Parcall.peek_status m pf in
    if counter = 0 then
      if status = 0 then true
      else if w.failing_pf <> pf then true
      else
        Parcall.peek_acks m pf
        >= List.length (unwind_targets m w pf ~peek:true)
    else Goal_frame.has_work w || status = 1
  end

(* ------------------------------------------------------------------ *)
(* Stealing.                                                          *)

let try_steal sim (w : Machine.worker) =
  let m = sim.m in
  w.idle_cycles <- w.idle_cycles + 1;
  if sim.allow_steal then begin
    let n = Machine.n_workers m in
    let rec scan i =
      if i < n then begin
        let v = Machine.worker m ((w.id + 1 + i) mod n) in
        if v.Machine.id <> w.id && Goal_frame.has_work v then begin
          let got =
            match sim.steal with
            | Steal_oldest -> Goal_frame.steal m w v
            | Steal_newest -> Goal_frame.pop_newest m w v
          in
          match got with
          | Some goal ->
            if Parcall.peek_status m goal.Goal_frame.pf = 1 then
              ignore
                (Parcall.check_in m w goal.Goal_frame.pf ~failed:false
                   ~slot:goal.Goal_frame.slot)
            else start_stolen_goal sim w goal
          | None -> scan (i + 1)
        end
        else scan (i + 1)
      end
    in
    scan 0
  end

(* ------------------------------------------------------------------ *)
(* One scheduler round.                                               *)

let step_running sim (w : Machine.worker) =
  let m = sim.m in
  let instr = Exec.fetch_traced m w in
  (* same fetch-time shallow-commit check as Exec.step: the parallel
     instructions below also end a certified clause's test prefix *)
  Exec.maybe_commit m w instr;
  m.Machine.opcode_freq.(Instr.opcode instr) <-
    m.Machine.opcode_freq.(Instr.opcode instr) + 1;
  w.instr_count <- w.instr_count + 1;
  m.Machine.steps <- m.Machine.steps + 1;
  w.p <- w.p + 1;
  match instr with
  | Instr.Alloc_parcall (k, join_addr) ->
    let pf = Parcall.alloc m w k ~join_addr in
    w.exec_stack <- Machine.Parcall_pending pf :: w.exec_stack
  | Instr.Push_goal (slot, fid, arity) -> begin
    match Code.entry m.Machine.code fid with
    | None ->
      Machine.runtime_error "undefined parallel goal %s"
        (Symbols.spec_string m.Machine.symbols fid)
    | Some entry -> Goal_frame.push m w ~pf:w.pf ~slot ~entry ~arity
  end
  | Instr.Par_join -> par_join sim w
  | Instr.Goal_done -> goal_done sim w
  | _ -> (
    try Exec.step_core m w instr
    with Exec.No_more_choices _ -> total_failure sim w)

(* A PE whose memory transaction has not settled executes nothing
   this round (integrated memory timing only). *)
let memory_stalled sim (w : Machine.worker) =
  match sim.memory with
  | None -> false
  | Some mm -> Memmodel.stalled mm w.id

let act sim (w : Machine.worker) =
  if memory_stalled sim w then w.wait_cycles <- w.wait_cycles + 1
  else if Messages.pending sim.queues w then process_message sim w
  else begin
    match w.status with
    | Machine.Halted -> ()
    | Machine.Running -> step_running sim w
    | Machine.Waiting ->
      w.wait_cycles <- w.wait_cycles + 1;
      if join_actionable sim w then w.status <- Machine.Running
    | Machine.Idle -> try_steal sim w
  end

let round sim =
  let m = sim.m in
  (match sim.memory with
  | Some mm -> Memmodel.set_now mm sim.rounds
  | None -> ());
  let any_running = ref false in
  Array.iter
    (fun w ->
      if w.Machine.status = Machine.Running || memory_stalled sim w then
        any_running := true)
    m.Machine.workers;
  Array.iter
    (fun w -> if not m.Machine.halted then act sim w)
    m.Machine.workers;
  sim.rounds <- sim.rounds + 1;
  if !any_running then sim.stagnant <- 0
  else begin
    sim.stagnant <- sim.stagnant + 1;
    if sim.stagnant > 10_000 then
      Machine.runtime_error
        "deadlock: no runnable worker for %d rounds (rounds=%d)" sim.stagnant
        sim.rounds
  end

(* ------------------------------------------------------------------ *)
(* Query driver.                                                      *)

let default_max_rounds = 500_000_000

let run_prepared ?(max_rounds = default_max_rounds) sim prog =
  let m = sim.m in
  let w0 = Machine.worker m 0 in
  let addrs = Seq.seed_query m w0 prog in
  try
    while not m.Machine.halted && not m.Machine.failed do
      if sim.rounds >= max_rounds then
        Machine.runtime_error "round limit exceeded (%d)" max_rounds;
      round sim
    done;
    if m.Machine.failed then Seq.Failure
    else Seq.Success (Seq.decode_answer m w0 prog addrs)
  with Exec.No_more_choices _ ->
    m.Machine.failed <- true;
    Seq.Failure

(* [run ~n_workers prog] executes the query on [n_workers] PEs. *)
let run ?out ?sink ?steal ?eager_kill ?allow_steal ?memory ?max_rounds
    ~n_workers prog =
  let sim =
    create ?out ?sink ?steal ?eager_kill ?allow_steal ?memory ~n_workers prog
  in
  let result = run_prepared ?max_rounds sim prog in
  (result, sim)

(* Convenience: parse, compile with CGEs enabled, run. *)
let solve ?out ?sink ?steal ?eager_kill ?allow_steal ?memory ?max_rounds
    ~n_workers ~src ~query () =
  let prog = Program.prepare ~parallel:true ~src ~query () in
  run ?out ?sink ?steal ?eager_kill ?allow_steal ?memory ?max_rounds
    ~n_workers prog
