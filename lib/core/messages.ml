(* Message buffers.

   Backward execution across PEs is driven by messages: when a parcall
   fails, the parent asks the PEs that executed sibling goals to unwind
   their sections (selective trail replay) and acknowledge.  Each PE
   has a message region with a lock word and head/tail pointers;
   messages are fixed three-word records.

   Region layout: word 0 = lock, 1 = head, 2 = tail, queue from 3.     *)

open Wam

let area = Trace.Area.Message
let msg_words = 3

type kind = Unwind | Kill

let kind_to_int = function Unwind -> 1 | Kill -> 2
let kind_of_int = function
  | 1 -> Unwind
  | 2 -> Kill
  | n -> Machine.runtime_error "bad message kind %d" n

type t = { kind : kind; pf : int; slot : int }

let lock_word pe = Layout.msg_base pe
let head_word pe = Layout.msg_base pe + 1
let tail_word pe = Layout.msg_base pe + 2
let queue_base pe = Layout.msg_base pe + 3

let rd m (w : Machine.worker) addr = Memory.read m.Machine.mem ~pe:w.id ~area addr
let wr m (w : Machine.worker) addr v = Memory.write m.Machine.mem ~pe:w.id ~area addr v

(* Workers mirror the queue pointers OCaml-side; memory words carry the
   traffic.  Pointers are per-target, tracked in this table. *)
type queues = { mutable heads : int array; mutable tails : int array }

let create_queues n =
  { heads = Array.make n 0; tails = Array.make n 0 }

let with_lock m w ~target f =
  Memory.sync m.Machine.mem ~pe:w.Machine.id
    ~kind:Trace.Ref_record.Acquire (lock_word target);
  ignore (rd m w (lock_word target));
  wr m w (lock_word target) (Cell.raw 1);
  let v = f () in
  wr m w (lock_word target) (Cell.raw 0);
  Memory.sync m.Machine.mem ~pe:w.Machine.id
    ~kind:Trace.Ref_record.Release (lock_word target);
  v

(* [send m q w ~target msg]: [w] appends a message to [target]'s buffer. *)
let send m q (w : Machine.worker) ~target msg =
  with_lock m w ~target (fun () ->
      let tail = q.tails.(target) in
      let base = queue_base target + (tail * msg_words) in
      if base + msg_words > Layout.msg_limit target then
        Machine.runtime_error "message buffer overflow (PE %d)" target;
      wr m w base (Cell.raw (kind_to_int msg.kind));
      wr m w (base + 1) (Cell.raw msg.pf);
      wr m w (base + 2) (Cell.raw msg.slot);
      q.tails.(target) <- tail + 1;
      wr m w (tail_word target) (Cell.raw (tail + 1)))

(* Untraced poll: does [w] have pending messages? *)
let pending q (w : Machine.worker) = q.heads.(w.id) < q.tails.(w.id)

(* Receive the next message (traced reads; called only when pending). *)
let receive m q (w : Machine.worker) =
  with_lock m w ~target:w.id (fun () ->
      let head = q.heads.(w.id) in
      let base = queue_base w.id + (head * msg_words) in
      let kind = kind_of_int (Cell.payload (rd m w base)) in
      let pf = Cell.payload (rd m w (base + 1)) in
      let slot = Cell.payload (rd m w (base + 2)) in
      q.heads.(w.id) <- head + 1;
      wr m w (head_word w.id) (Cell.raw (head + 1));
      if q.heads.(w.id) = q.tails.(w.id) then begin
        (* queue drained: reset so the region is reused *)
        q.heads.(w.id) <- 0;
        q.tails.(w.id) <- 0;
        wr m w (head_word w.id) (Cell.raw 0);
        wr m w (tail_word w.id) (Cell.raw 0)
      end;
      { kind; pf; slot })
