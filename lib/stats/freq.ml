(* Instruction-frequency reporting from the machine's opcode counters. *)

type entry = { opcode : int; name : string; count : int; percent : float }

let of_counts counts =
  let total = Array.fold_left ( + ) 0 counts in
  let entries = ref [] in
  Array.iteri
    (fun opcode count ->
      if count > 0 then
        entries :=
          {
            opcode;
            name = Wam.Instr.opcode_name opcode;
            count;
            percent =
              (if total = 0 then 0.0
               else 100.0 *. float_of_int count /. float_of_int total);
          }
          :: !entries)
    counts;
  List.sort (fun a b -> compare b.count a.count) !entries

(* ------------------------------------------------------------------ *)
(* Zipfian rank sampling (the server's traffic generator).            *)

let check_zipf ~s ~n =
  if n < 1 then invalid_arg "Freq.zipf: n must be >= 1";
  if s < 0.0 then invalid_arg "Freq.zipf: s must be >= 0"

let zipf_weights ~s ~n =
  check_zipf ~s ~n;
  let w = Array.init n (fun r -> 1.0 /. (float_of_int (r + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  Array.map (fun x -> x /. total) w

(* Same Park-Miller-ish LCG as the benchmark input generators, scaled
   to a uniform float in [0, 1). *)
let zipf ~s ~n ~seed =
  let weights = zipf_weights ~s ~n in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      cdf.(i) <- !acc)
    weights;
  cdf.(n - 1) <- 1.0;
  let state = ref (if seed = 0 then 123456789 else seed) in
  fun () ->
    state := (!state * 1103515245) + 12345;
    let v = (!state lsr 16) land 0x7fffffff in
    let u = float_of_int v /. 2147483648.0 in
    (* binary search: first rank whose cumulative weight exceeds u *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) > u then hi := mid else lo := mid + 1
    done;
    !lo

let pp fmt counts =
  let entries = of_counts counts in
  Format.fprintf fmt "@[<v>%-24s %10s %7s@," "instruction" "count" "%";
  List.iter
    (fun e ->
      Format.fprintf fmt "%-24s %10d %6.2f%%@," e.name e.count e.percent)
    entries;
  Format.fprintf fmt "@]"
