(** Instruction-frequency reporting from the machine's opcode
    counters. *)

type entry = { opcode : int; name : string; count : int; percent : float }

val of_counts : int array -> entry list
(** Non-zero opcodes sorted by descending count. *)

val pp : Format.formatter -> int array -> unit

(** {1 Zipfian rank sampling}

    The traffic generator's skewed query mix: rank 0 is the most
    popular item, rank [n-1] the least, with weight proportional to
    [1 / (rank+1)^s].  All randomness is a fixed-seed LCG, so a seed
    fully determines the sample sequence. *)

val zipf_weights : s:float -> n:int -> float array
(** Normalized weights by rank ([n] entries summing to 1).
    @raise Invalid_argument if [n < 1] or [s < 0]. *)

val zipf : s:float -> n:int -> seed:int -> unit -> int
(** [zipf ~s ~n ~seed] is a sampler; each call draws the next rank in
    [\[0, n)] by inverse-CDF lookup over {!zipf_weights}.
    @raise Invalid_argument if [n < 1] or [s < 0]. *)
