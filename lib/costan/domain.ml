(* The cost domain: asymptotic classes and saturating intervals.

   A predicate's cost is described on two levels.  The *class* is the
   symbolic growth rate of its resolution-step count as a function of
   input size, obtained by recurrence extraction over the call-graph
   SCCs (Debray & Lin's scheme, restricted to the structural and
   integer metrics the benchmarks need).  The *interval* is a concrete
   [lo, hi] bound in resolution steps or memory references for one
   specific query, obtained by abstract execution from the query's
   actual arguments.  Classes gate what the annotator may
   sequentialize; intervals feed the per-area reference predictions
   checked against traces. *)

type cls =
  | Constant
  | Linear
  | Poly of int  (* degree >= 2 *)
  | Expo
  | Unknown

let cls_name = function
  | Constant -> "constant"
  | Linear -> "linear"
  | Poly d -> Printf.sprintf "poly(%d)" d
  | Expo -> "expo"
  | Unknown -> "unknown"

let degree = function
  | Constant -> Some 0
  | Linear -> Some 1
  | Poly d -> Some d
  | Expo | Unknown -> None

let of_degree d = if d <= 0 then Constant else if d = 1 then Linear else Poly d

(* Least upper bound in Constant < Linear < Poly < Expo < Unknown.
   Unknown is top: "no bound claimed" absorbs even Expo. *)
let join_cls a b =
  match (a, b) with
  | Unknown, _ | _, Unknown -> Unknown
  | Expo, _ | _, Expo -> Expo
  | a, b -> (
    match (degree a, degree b) with
    | Some da, Some db -> of_degree (max da db)
    | _ -> Unknown)

(* Sequential composition g1, g2: degrees add only under iteration;
   for a plain conjunction the cost is a sum, so the class is the max. *)
let seq_cls = join_cls

(* ------------------------------------------------------------------ *)
(* Saturating non-negative intervals.  The cap keeps products of deep
   recurrences from overflowing native ints; a capped bound still
   orders correctly against any measurable count. *)

type interval = { lo : int; hi : int }

let cap = 1 lsl 49
let sat n = if n < 0 then 0 else if n > cap then cap else n
let itv lo hi = { lo = sat lo; hi = sat (max lo hi) }
let point n = itv n n
let zero = point 0
let is_zero i = i.lo = 0 && i.hi = 0
let add a b = { lo = sat (a.lo + b.lo); hi = sat (a.hi + b.hi) }

let scale k i = { lo = sat (k * i.lo); hi = sat (k * i.hi) }

let mul a b =
  (* both non-negative, so the corner products are monotone *)
  { lo = sat (a.lo * b.lo); hi = sat (a.hi * b.hi) }

let join a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }
let sub_lo i n = { i with lo = sat (i.lo - n) }

let shift n i = { lo = sat (i.lo + n); hi = sat (i.hi + n) }

let exact i = i.lo = i.hi

(* Geometric midpoint: the representative value quoted when a single
   number is wanted from a bound.  Geometric, not arithmetic, so that
   a [n, 4n] interval is reported as 2n (off by the same factor both
   ways). *)
let mid i =
  if i.lo <= 0 then (i.lo + i.hi) / 2
  else
    let m =
      int_of_float (sqrt (float_of_int i.lo *. float_of_int i.hi))
    in
    max i.lo (min i.hi m)

(* Width as a ratio; 1.0 = exact, infinity when lo = 0 < hi. *)
let ratio i =
  if i.hi = 0 then 1.0
  else if i.lo = 0 then infinity
  else float_of_int i.hi /. float_of_int i.lo

let pp_interval fmt i =
  if exact i then Format.fprintf fmt "%d" i.lo
  else Format.fprintf fmt "[%d,%d]" i.lo i.hi
