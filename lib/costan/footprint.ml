(* Static per-instruction memory footprints.

   Generalizes the paper's §3.3 "memory references per instruction"
   constant into a per-predicate table: each WAM instruction is mapped
   to an interval of tagged references per area (the same taxonomy the
   tracer uses), derived from Exec's actual read/write behaviour:

     - every executed instruction is one Code read (the fetch);
     - a heap push is one Heap write; binding may add one Trail write
       (skipped for cells younger than the last choice point);
     - dereferencing costs one read per chain hop -- bounded here by 1
       because compiled code dereferences mostly-bound registers;
     - general unification keeps the current pair in registers, so
       flat terms touch the PDL not at all; nested pairs push/pop two
       words at a time;
     - a choice point is [arity + 9] words; an environment's control
       part is 3 words written, 2 read on deallocate; permanent
       variables live at Env_pvar addresses.

   Intervals bound the *success path* of an instruction.  Failure
   sweeps (choice-point restoration, untrailing) are charged to the
   selection cost of the predicate that fails, approximately; this is
   the main source of slack in backtracking-heavy predicates and is
   why the analyzer reports intervals, not points. *)

open Domain

type t = interval array (* indexed by Trace.Area.to_int *)

let n_areas = Trace.Area.count
let nil () = Array.make n_areas zero

let add_area (fp : t) area i =
  let k = Trace.Area.to_int area in
  fp.(k) <- add fp.(k) i

let copy : t -> t = Array.copy
let sum (a : t) (b : t) : t = Array.init n_areas (fun i -> add a.(i) b.(i))
let joinfp (a : t) (b : t) : t =
  Array.init n_areas (fun i -> join a.(i) b.(i))
let scalefp k (a : t) : t = Array.map (scale k) a
let mulfp (i : interval) (a : t) : t = Array.map (mul i) a
let total (a : t) = Array.fold_left add zero a

let data_total (a : t) =
  let code = Trace.Area.to_int Trace.Area.Code in
  let acc = ref zero in
  Array.iteri (fun i x -> if i <> code then acc := add !acc x) a;
  !acc

(* One dereference: zero hops when the register already holds a bound
   cell (the common case in compiled code), one when it holds a ref
   into the heap. *)
let d = itv 0 1

(* General unification of two argument cells: at least one read to
   compare, a few more plus a possible binding for small terms.  Deep
   terms recurse through the PDL; the slack is acceptable because
   Get_value/Unify (=/2) are rare in the benchmarks. *)
let unify_heap = itv 1 4
let unify_trail = itv 0 1
let unify_pdl = itv 0 2

let env_read r fp =
  match r with
  | Wam.Instr.X _ -> ()
  | Wam.Instr.Y _ -> add_area fp Trace.Area.Env_pvar (point 1)

(* Data references of one instruction on its success path.  [nargs] is
   the arity of the predicate the instruction belongs to (choice-point
   size).  The Code fetch is added uniformly at the end. *)
let instr ~nargs (i : Wam.Instr.t) : t =
  let fp = nil () in
  let heap x = add_area fp Trace.Area.Heap x in
  let trail x = add_area fp Trace.Area.Trail x in
  let pdl x = add_area fp Trace.Area.Pdl x in
  let envc x = add_area fp Trace.Area.Env_control x in
  let envp x = add_area fp Trace.Area.Env_pvar x in
  let cp x = add_area fp Trace.Area.Choice_point x in
  (match i with
  | Put_variable (X _, _) -> heap (point 1)
  | Put_variable (Y _, _) -> envp (point 1)
  | Put_value (r, _) -> env_read r fp
  | Put_unsafe_value _ ->
    (* read the slot, deref; globalization adds a heap cell, a stack
       binding and possibly a trail entry *)
    envp (itv 1 3);
    heap (itv 0 2);
    trail (itv 0 1)
  | Put_constant _ | Put_integer _ | Put_nil _ | Put_list _ -> ()
  | Put_structure _ -> heap (point 1)
  | Get_variable (r, _) -> env_read r fp
  | Get_value (r, _) ->
    env_read r fp;
    heap unify_heap;
    trail unify_trail;
    pdl unify_pdl
  | Get_constant _ | Get_integer _ | Get_nil _ ->
    heap (add d (itv 0 1));
    trail (itv 0 1)
  | Get_structure _ ->
    (* read mode: deref + functor read; write mode: functor push +
       str binding *)
    heap (itv 1 3);
    trail (itv 0 1)
  | Get_list _ ->
    heap (add d (itv 0 1));
    trail (itv 0 1)
  | Unify_variable r ->
    env_read r fp;
    heap (point 1) (* write: push; read: read the cell at S *)
  | Unify_value r ->
    env_read r fp;
    heap unify_heap;
    trail unify_trail;
    pdl unify_pdl
  | Unify_local_value r ->
    env_read r fp;
    heap unify_heap;
    trail unify_trail;
    pdl unify_pdl;
    (* write-mode globalization binds the stack cell *)
    add_area fp Trace.Area.Env_pvar (itv 0 2)
  | Unify_constant _ | Unify_integer _ | Unify_nil ->
    heap (itv 1 3);
    trail (itv 0 1)
  | Unify_void n -> heap (itv 0 n)
  | Allocate _ -> envc (point 3)
  | Deallocate -> envc (point 2)
  | Call _ | Execute _ | Proceed | Jump _ | Halt_ok -> ()
  | Try _ -> cp (point (nargs + 9))
  | Retry _ -> cp (point 2)
  | Trust _ -> cp (itv 2 4)
  (* shallow frames live in processor registers: no choice-point
     words; a commit may flush logged bindings to the trail *)
  | Det_try _ | Det_retry _ | Det_trust _ -> ()
  | Switch_on_term _ -> heap d
  | Switch_on_constant _ | Switch_on_integer _ -> heap d
  | Switch_on_structure _ -> heap (add d (itv 0 1))
  | Neck_cut -> cp (itv 0 2)
  | Get_level _ -> envp (point 1)
  | Cut_to _ ->
    envp (point 1);
    cp (itv 0 2)
  | Builtin (b, ar) -> (
    match b with
    | True_b | Fail_b | Halt_b -> ()
    | Is ->
      (* evaluate a small expression tree (reads), bind the result *)
      heap (itv 1 6);
      trail (itv 0 1)
    | Lt | Gt | Le | Ge | Arith_eq | Arith_ne -> heap (itv 2 8)
    | Unify | Not_unify ->
      heap (itv 1 6);
      trail (itv 0 2);
      pdl (itv 0 4)
    | Term_eq | Term_ne | Term_lt | Term_gt | Term_le | Term_ge ->
      heap (itv 2 8)
    | Var_p | Nonvar_p | Atom_p | Integer_p | Atomic_p | Compound_p ->
      heap d
    | Ground_p -> heap (itv 1 16)
    | Indep_p -> heap (itv 2 24)
    | Write_t | Print_t | Nl -> ()
    | Functor_b ->
      heap (itv 1 4);
      trail (itv 0 2)
    | Arg_b -> heap (itv 2 4)
    | Univ -> heap (itv 2 (4 + (2 * max 1 ar))))
  (* binding-certified specializations (lib/bindan): no deref hop, no
     trail entry on the certified argument *)
  | Get_structure_r _ -> heap (point 1) (* functor read only *)
  | Get_list_r _ -> ()
  | Get_value_r (r, _) ->
    env_read r fp;
    heap unify_heap;
    trail unify_trail;
    pdl unify_pdl
  | Get_value_u (r, _) ->
    (* full unification, trail entries elided *)
    env_read r fp;
    heap unify_heap;
    pdl unify_pdl
  | Get_structure_u _ -> heap (point 2) (* functor push + cell overwrite *)
  | Get_list_u _ | Get_constant_u _ | Get_integer_u _ | Get_nil_u _ ->
    (* one direct overwrite of the certified-free cell *)
    heap (itv 0 1);
    add_area fp Trace.Area.Env_pvar (itv 0 1)
  | Builtin_nt (b, _) -> (
    match b with
    | Is -> heap (itv 1 6)
    | Unify ->
      heap (itv 1 6);
      pdl (itv 0 4)
    | _ -> ())
  | Put_uninit _ -> () (* the self-reference init is untraced *)
  | Check_ground _ -> heap (itv 1 16)
  | Check_indep _ -> heap (itv 2 24)
  | Check_size (_, k, _) -> heap (itv 1 (max 1 k))
  | Alloc_parcall (k, _) ->
    add_area fp Trace.Area.Parcall_local (itv 2 4);
    add_area fp Trace.Area.Parcall_global (itv k (2 * k));
    add_area fp Trace.Area.Parcall_count (itv 1 2)
  | Push_goal (_, _, ar) ->
    add_area fp Trace.Area.Goal_frame (itv (ar + 2) (ar + 4))
  | Par_join ->
    add_area fp Trace.Area.Parcall_count (itv 1 4);
    add_area fp Trace.Area.Message (itv 0 4)
  | Goal_done -> add_area fp Trace.Area.Message (itv 0 4));
  add_area fp Trace.Area.Code (point 1);
  fp

(* ------------------------------------------------------------------ *)
(* Per-clause footprints: compile the clause alone (sequential reading,
   so CGEs flatten into conjunctions and every emitted instruction
   executes exactly once on the clause's success path) and sum the
   instruction footprints. *)

type clause_cost = {
  refs : t;  (** per successful execution of this clause's code *)
  instrs : int;  (** instructions emitted = Code references *)
  user_calls : int;  (** Call/Execute count = inferences charged here *)
}

let clause_instrs (clause : Prolog.Database.clause) : Wam.Instr.t list =
  let db = Prolog.Database.create () in
  Prolog.Database.add_clause db clause;
  let symbols = Wam.Symbols.create () in
  let code = Wam.Compile.compile_db ~parallel:false symbols db in
  (* instruction 0 is halt, 1 is goal_done; the clause follows *)
  let out = ref [] in
  for a = Wam.Code.length code - 1 downto 2 do
    out := Wam.Code.fetch code a :: !out
  done;
  !out

let clause (cl : Prolog.Database.clause) : clause_cost =
  let nargs =
    match cl.Prolog.Database.head with
    | Prolog.Term.Struct (_, args) -> List.length args
    | Prolog.Term.Atom _ | Prolog.Term.Int _ | Prolog.Term.Var _ -> 0
  in
  let instrs = clause_instrs cl in
  let refs =
    List.fold_left (fun acc i -> sum acc (instr ~nargs i)) (nil ()) instrs
  in
  let user_calls =
    List.length
      (List.filter
         (function Wam.Instr.Call _ | Wam.Instr.Execute _ -> true | _ -> false)
         instrs)
  in
  { refs; instrs = List.length instrs; user_calls }

(* ------------------------------------------------------------------ *)
(* Clause-selection overhead per call: indexing dispatch plus, for
   predicates where first-argument indexing cannot isolate a single
   clause, choice-point traffic (push + restore on the sweep that
   eventually discards it). *)

let first_arg_group (cl : Prolog.Database.clause) =
  match cl.Prolog.Database.head with
  | Prolog.Term.Struct (_, arg1 :: _) -> (
    match arg1 with
    | Prolog.Term.Var _ -> `Var
    | Prolog.Term.Atom a -> `Con a
    | Prolog.Term.Int n -> `Int n
    | Prolog.Term.Struct (f, args) -> `Str (f, List.length args))
  | Prolog.Term.Struct (_, []) | Prolog.Term.Atom _ | Prolog.Term.Int _
  | Prolog.Term.Var _ ->
    `Var

let deterministic_indexing clauses =
  (* every principal-functor bucket holds exactly one clause and no
     clause is variable-headed: switch_on_term dispatches straight to
     the single candidate, no try/retry/trust is ever executed *)
  let groups = Hashtbl.create 8 in
  List.for_all
    (fun cl ->
      match first_arg_group cl with
      | `Var -> false
      | g ->
        if Hashtbl.mem groups g then false
        else begin
          Hashtbl.add groups g ();
          true
        end)
    clauses

let selection ~arity clauses : t =
  let fp = nil () in
  match clauses with
  | [] | [ _ ] ->
    (* single clause (or undefined): entry jumps straight in *)
    fp
  | _ ->
    add_area fp Trace.Area.Code (itv 1 3);
    add_area fp Trace.Area.Heap d;
    if not (deterministic_indexing clauses) then begin
      (* a choice point may be pushed, restored after a failed clause
         (arguments re-read), updated by retry, and discarded by trust
         or a cut -- up to three passes over its words *)
      let words = arity + 9 in
      add_area fp Trace.Area.Choice_point (itv 0 ((3 * words) + 10));
      add_area fp Trace.Area.Trail (itv 0 4)
    end;
    fp

(* ------------------------------------------------------------------ *)
(* Query start-up: encoding the query's arguments onto the heap.  The
   cell counts mirror Exec's encode: a list node pushes two cells, a
   structure pushes its functor plus arity argument cells, atoms and
   integers are immediate in their parent's cell. *)

let rec encoded_cells (t : Prolog.Term.t) =
  match t with
  | Prolog.Term.Atom _ | Prolog.Term.Int _ -> 0
  | Prolog.Term.Var _ -> 1
  | Prolog.Term.Struct (".", [ h; tl ]) ->
    2 + encoded_cells h + encoded_cells tl
  | Prolog.Term.Struct (_, args) ->
    1 + List.length args
    + List.fold_left (fun acc a -> acc + encoded_cells a) 0 args
