(* Rendering: the per-predicate cost table (deterministic, in the
   shared SCC order -- CI diffs two runs of it) and JSON fragments for
   the CLI and the bench harness. *)

open Domain

let pp_verdict fmt = function
  | Analyze.Keep -> Format.pp_print_string fmt "keep"
  | Analyze.Small -> Format.pp_print_string fmt "small"
  | Analyze.Guard (i, k) -> Format.fprintf fmt "guard(arg %d, size >= %d)" i k

(* The --dump-costs table: one line per predicate, topo order. *)
let pp_costs ?threshold fmt an =
  Format.fprintf fmt "%-20s %-10s %5s %10s %12s %4s%s@."
    "predicate" "class" "dec" "unit(mid)" "unit(hi)" "det"
    (match threshold with Some _ -> "  verdict" | None -> "");
  List.iter
    (fun key ->
      match Analyze.find an key with
      | None -> ()
      | Some p ->
        Format.fprintf fmt "%-20s %-10s %5s %10d %12d %4s"
          (Printf.sprintf "%s/%d" (fst key) (snd key))
          (cls_name p.Analyze.cls)
          (match p.Analyze.dec with
          | Some i -> string_of_int i
          | None -> "-")
          p.Analyze.unit_cost p.Analyze.unit_hi
          (if p.Analyze.det then "yes" else "no");
        (match threshold with
        | Some th ->
          Format.fprintf fmt "  %a" pp_verdict
            (Analyze.verdict_key an ~threshold:th key)
        | None -> ());
        Format.pp_print_newline fmt ())
    (Analyze.order an)

(* ------------------------------------------------------------------ *)
(* JSON (hand-rolled, like the bench harness's writers). *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_interval buf (i : interval) =
  Buffer.add_string buf
    (Printf.sprintf "{\"lo\": %d, \"hi\": %d, \"mid\": %d}" i.lo i.hi (mid i))

let json_refs buf (refs : Footprint.t) =
  Buffer.add_string buf "{";
  let first = ref true in
  List.iter
    (fun area ->
      let i = refs.(Trace.Area.to_int area) in
      if not (is_zero i) then begin
        if not !first then Buffer.add_string buf ", ";
        first := false;
        Buffer.add_string buf
          (Printf.sprintf "\"%s\": " (json_escape (Trace.Area.name area)));
        json_interval buf i
      end)
    Trace.Area.all;
  Buffer.add_string buf "}"

let json_prediction buf (p : Eval.prediction) =
  Buffer.add_string buf "{\"steps\": ";
  json_interval buf p.Eval.p_steps;
  Buffer.add_string buf ", \"refs\": ";
  json_refs buf p.Eval.p_refs;
  Buffer.add_string buf
    (Printf.sprintf ", \"evals\": %d, \"exact\": %b}" p.Eval.p_evals
       (p.Eval.p_exactness = Eval.Yes))

let json_predicates buf an =
  Buffer.add_string buf "[";
  let first = ref true in
  List.iter
    (fun key ->
      match Analyze.find an key with
      | None -> ()
      | Some p ->
        if not !first then Buffer.add_string buf ", ";
        first := false;
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\": \"%s\", \"arity\": %d, \"class\": \"%s\", \
              \"dec\": %s, \"unit_cost\": %d, \"unit_hi\": %d, \
              \"determinate\": %b}"
             (json_escape (fst key))
             (snd key)
             (cls_name p.Analyze.cls)
             (match p.Analyze.dec with
             | Some i -> string_of_int i
             | None -> "null")
             p.Analyze.unit_cost p.Analyze.unit_hi p.Analyze.det))
    (Analyze.order an);
  Buffer.add_string buf "]"
