(* Recurrence extraction and cost classification.

   Works bottom-up over the predicate call graph in the shared
   deterministic SCC order ([Analysis.Depgraph.topo_order], the same
   order the groundness fixpoint seeds in).  For each predicate the
   pass looks for an argument position that every self-recursive call
   decreases -- structurally (the call argument is a proper subterm of
   the head pattern at that position) or numerically (an [N1 is N - k]
   chain, or [N1 is N + k] walking toward a bound tested by a
   comparison in the same clause) -- and solves the resulting
   recurrence into a cost class:

     - no recursion: the join of the callees' classes;
     - one decreasing call per clause: degree(body) + 1;
     - several structurally decreasing calls on distinct subterms of
       one argument (tree recursion): still degree(body) + 1, because
       the recursion tree is linear in the input term's size;
     - several decreasing calls sharing a metric (fib-style):
       exponential;
     - any non-decreasing recursive call, mutual recursion, a call
       through a variable, or a failure-capable builtin after a user
       goal (search, as in [query]): unknown -- no bound claimed.

   Alongside the class the pass records the per-activation memory
   footprint (the clause tables from {!Footprint}) and whether the
   predicate's call closure is cut-disciplined -- the determinacy
   evidence the granularity verdicts require before trusting a bound. *)

open Domain
module Term = Prolog.Term
module Cge = Prolog.Cge
module Database = Prolog.Database
module Depgraph = Analysis.Depgraph

type key = Depgraph.key

type pinfo = {
  key : key;
  arity : int;
  clauses : Database.clause array;
  costs : Footprint.clause_cost array;
  sel : Footprint.t;  (** per-call clause-selection overhead *)
  cls : cls;
  dec : int option;  (** the decreasing (input-size) argument position *)
  unit_cost : int;
      (** representative data references per activation, non-recursive
          callees folded in (the paper's §3.3 constant, per predicate) *)
  unit_hi : int;  (** upper bound of the same *)
  det : bool;  (** cut-disciplined: all non-final clauses cut *)
}

type t = {
  db : Database.t;
  graph : Depgraph.t;
  order : key list;
  tbl : (key, pinfo) Hashtbl.t;
}

let database t = t.db
let order t = t.order
let find t k = Hashtbl.find_opt t.tbl k

(* ------------------------------------------------------------------ *)
(* Clause-body helpers.  Arms of a CGE cost the same goals as the
   sequential reading (the analysis models the sequential machine;
   spawn overhead is the annotator's threshold, not a clause cost). *)

let body_goals body =
  List.concat_map
    (function Cge.Lit g -> [ g ] | Cge.Par { arms; _ } -> arms)
    body

let goal_key db g =
  match Term.functor_of g with
  | Some (n, a) when Database.has_predicate db (n, a) -> Some (n, a)
  | Some _ | None -> None

let head_args (clause : Database.clause) =
  match clause.Database.head with
  | Term.Struct (_, args) -> Array.of_list args
  | Term.Atom _ | Term.Int _ | Term.Var _ -> [||]

let has_cut (clause : Database.clause) =
  List.exists
    (function Cge.Lit (Term.Atom "!") -> true | _ -> false)
    clause.Database.body

(* Cut-disciplined: every clause that has a successor clause commits
   with a cut, so a successful call leaves no viable alternative
   behind.  (First-argument indexing can also be deterministic without
   cuts, but only for calls with a bound first argument -- which the
   static verdict cannot assume.) *)
let cut_disciplined clauses =
  let n = Array.length clauses in
  n <= 1
  ||
  let ok = ref true in
  for i = 0 to n - 2 do
    if not (has_cut clauses.(i)) then ok := false
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* Decreasing-argument detection. *)

let rec proper_subvar v p =
  match p with
  | Term.Struct (_, args) ->
    List.exists
      (fun a ->
        (match a with Term.Var v' -> String.equal v v' | _ -> false)
        || proper_subvar v a)
      args
  | Term.Atom _ | Term.Int _ | Term.Var _ -> false

(* Arithmetic-step definitions in a clause body: [N1 is N - k] makes N1
   a descent from N; [N1 is N + k] counts as descent only when the
   clause also compares N against something (a bounded climb, as in
   [integers/3]). *)
let arith_descents clauses_body =
  let goals = body_goals clauses_body in
  let compared = Hashtbl.create 4 in
  List.iter
    (fun g ->
      match g with
      | Term.Struct (("<" | ">" | "=<" | ">="), [ a; b ]) ->
        List.iter (fun v -> Hashtbl.replace compared v ()) (Term.vars a);
        List.iter (fun v -> Hashtbl.replace compared v ()) (Term.vars b)
      | _ -> ())
    goals;
  List.filter_map
    (fun g ->
      match g with
      | Term.Struct ("is", [ Term.Var n1; Term.Struct ("-", [ Term.Var n; Term.Int k ]) ])
        when k >= 1 ->
        Some (n1, n)
      | Term.Struct ("is", [ Term.Var n1; Term.Struct ("+", [ Term.Var n; Term.Int k ]) ])
        when k >= 1 && Hashtbl.mem compared n ->
        Some (n1, n)
      | _ -> None)
    goals

(* Does [clause]'s recursive call [args] decrease at position [i]? *)
let decreases clause hargs descents i arg =
  match arg with
  | Term.Var a -> (
    (i < Array.length hargs && proper_subvar a hargs.(i))
    ||
    match (if i < Array.length hargs then hargs.(i) else Term.Atom "") with
    | Term.Var n ->
      List.exists
        (fun (n1, src) -> String.equal n1 a && String.equal src n)
        descents
    | _ -> false)
  | Term.Atom _ | Term.Int _ | Term.Struct _ ->
    ignore clause;
    false

(* Failure-capable builtins: their failure mid-clause forces
   backtracking the recurrence scheme cannot bound when it happens
   after a user goal (generate-and-test). *)
let can_fail_builtin g =
  match g with
  | Term.Struct
      ( ( "<" | ">" | "=<" | ">=" | "=:=" | "=\\=" | "\\=" | "==" | "\\=="
        | "@<" | "@>" | "@=<" | "@>=" ),
        _ ) ->
    true
  | _ -> false

(* ------------------------------------------------------------------ *)

let classify db graph modes (key : key) clauses (lookup : key -> pinfo option) =
  let scc_peers =
    (* mutual recursion: any callee in the same SCC other than self *)
    List.exists
      (fun k ->
        (not (k = key)) && Depgraph.scc_index graph k = Depgraph.scc_index graph key)
      (Depgraph.callees graph key)
  in
  let callee_cls k =
    if k = key then Constant (* handled by the recurrence *)
    else match lookup k with Some p -> p.cls | None -> Unknown
  in
  let gated = ref false in
  let rec_calls = ref [] (* (clause, rec-arg lists) *) in
  let body_deg = ref Constant in
  Array.iter
    (fun (clause : Database.clause) ->
      let goals = body_goals clause.Database.body in
      let seen_user = ref false in
      let this_rec = ref [] in
      List.iter
        (fun g ->
          match g with
          | Term.Var _ -> gated := true (* call/1 through a variable *)
          | _ -> (
            match goal_key db g with
            | Some k ->
              seen_user := true;
              if k = key then
                this_rec :=
                  (clause,
                   match g with
                   | Term.Struct (_, args) -> args
                   | _ -> [])
                  :: !this_rec
              else body_deg := join_cls !body_deg (callee_cls k)
            | None -> if !seen_user && can_fail_builtin g then gated := true))
        goals;
      rec_calls := List.rev_append !this_rec !rec_calls)
    clauses;
  if !gated || scc_peers then (Unknown, None)
  else if !rec_calls = [] then (!body_deg, None)
  else begin
    (* find a position every recursive call decreases *)
    let arity =
      match lookup key with
      | Some p -> p.arity
      | None -> (
        match clauses with
        | [||] -> 0
        | cls -> Array.length (head_args cls.(0)))
    in
    (* positions declared as inputs by the mode directives are tried
       first: a "decrease" found on an output position (a structure
       being built) is still a valid recurrence metric, but a guard on
       it would always see an unbound variable *)
    let positions =
      let all = List.init arity (fun i -> i) in
      match Prolog.Modes.lookup modes ~name:(fst key) ~arity with
      | None -> all
      | Some ms ->
        let marr = Array.of_list ms in
        let inputs =
          List.filter (fun i -> marr.(i) = Prolog.Modes.Ground_in) all
        in
        inputs @ List.filter (fun i -> not (List.mem i inputs)) all
    in
    let dec_pos = ref None in
    (try
       List.iter
         (fun i ->
           let ok =
             List.for_all
               (fun ((clause : Database.clause), args) ->
                 let hargs = head_args clause in
                 let descents = arith_descents clause.Database.body in
                 match List.nth_opt args i with
                 | Some arg -> decreases clause hargs descents i arg
                 | None -> false)
               !rec_calls
           in
           if ok then begin
             dec_pos := Some i;
             raise Exit
           end)
         positions
     with Exit -> ());
    match !dec_pos with
    | None -> (Unknown, None)
    | Some i ->
      (* several recursive calls per clause: tree recursion stays at
         degree + 1 when the decreasing arguments are distinct proper
         subterms of one pattern; otherwise the recurrence doubles
         (fib-style) *)
      let per_clause = Hashtbl.create 4 in
      List.iter
        (fun ((clause : Database.clause), _) ->
          let n =
            match Hashtbl.find_opt per_clause clause.Database.head with
            | Some n -> n
            | None -> 0
          in
          Hashtbl.replace per_clause clause.Database.head (n + 1))
        !rec_calls;
      let max_per_clause =
        Hashtbl.fold (fun _ n acc -> max n acc) per_clause 0
      in
      let tree_ok =
        max_per_clause <= 1
        ||
        (* within each clause, the decreasing args must be distinct
           structural subterm vars of one pattern: the recursion then
           visits each input subterm once (tree recursion), keeping
           the recurrence linear rather than fib-style *)
        Hashtbl.fold
          (fun head _ acc ->
            acc
            &&
            let calls =
              List.filter
                (fun ((c : Database.clause), _) ->
                  Term.equal c.Database.head head)
                !rec_calls
            in
            let vars =
              List.filter_map
                (fun ((clause : Database.clause), args) ->
                  let hargs = head_args clause in
                  match List.nth_opt args i with
                  | Some (Term.Var a)
                    when i < Array.length hargs && proper_subvar a hargs.(i)
                    ->
                    Some a
                  | _ -> None)
                calls
            in
            List.length vars = List.length calls
            && List.length (List.sort_uniq compare vars) = List.length vars)
          per_clause true
      in
      let cls =
        if not tree_ok then
          match !body_deg with Unknown -> Unknown | _ -> Expo
        else
          match degree !body_deg with
          | Some d -> of_degree (d + 1)
          | None -> !body_deg (* Expo or Unknown body dominates *)
      in
      (cls, Some i)
  end

(* ------------------------------------------------------------------ *)

let analyze ?modes db =
  let modes =
    match modes with Some m -> m | None -> Prolog.Modes.of_database db
  in
  let graph = Depgraph.build db in
  let order = Depgraph.topo_order graph in
  let tbl = Hashtbl.create 64 in
  let t = { db; graph; order; tbl } in
  List.iter
    (fun key ->
      let clauses = Array.of_list (Database.clauses db key) in
      let costs = Array.map Footprint.clause clauses in
      let arity = snd key in
      let sel = Footprint.selection ~arity (Array.to_list clauses) in
      let cls, dec =
        classify db graph modes key clauses (Hashtbl.find_opt tbl)
      in
      (* per-activation data references: the worst clause, with
         non-recursive callee activations folded in (one level of each,
         the recurrence multiplies the rest) *)
      let callee_unit k =
        if k = key then (0, 0)
        else
          match Hashtbl.find_opt tbl k with
          | Some p ->
            let s = Footprint.data_total p.sel in
            (p.unit_cost + mid s, p.unit_hi + s.hi)
          | None -> (0, 0)
      in
      let unit_cost, unit_hi =
        Array.fold_left
          (fun (am, ah) (clause, (cost : Footprint.clause_cost)) ->
            let d = Footprint.data_total cost.refs in
            let m = ref (mid d) and h = ref d.hi in
            List.iter
              (fun g ->
                match goal_key db g with
                | Some k ->
                  let cm, ch = callee_unit k in
                  m := !m + cm;
                  h := !h + ch
                | None -> ())
              (body_goals clause.Database.body);
            (max am !m, max ah !h))
          (0, 0)
          (Array.map2 (fun c k -> (c, k)) clauses costs)
      in
      let det = cut_disciplined clauses in
      Hashtbl.replace tbl key
        { key; arity; clauses; costs; sel; cls; dec; unit_cost; unit_hi; det })
    order;
  t

(* ------------------------------------------------------------------ *)
(* Determinacy of a goal's whole call closure. *)

let det_closure t key =
  let seen = Hashtbl.create 16 in
  let rec go k =
    if Hashtbl.mem seen k then true
    else begin
      Hashtbl.replace seen k ();
      (match find t k with Some p -> p.det | None -> false)
      && List.for_all go (Depgraph.callees t.graph k)
    end
  in
  go key

(* ------------------------------------------------------------------ *)
(* Granularity verdicts.

   [threshold] is the spawn overhead in data references: a goal whose
   total cost bound falls below it is not worth a parallel spawn.
   Verdicts only trust a bound when the goal's call closure is
   cut-disciplined -- otherwise backtracking can multiply the
   success-path cost arbitrarily (this is what keeps [queens] and
   [query] parallelism intact). *)

type verdict =
  | Keep  (** worth spawning, or no bound known *)
  | Small  (** statically below the threshold: sequentialize *)
  | Guard of int * int
      (** (argument position, minimum size): data-dependent; spawn
          only when the input reaches the size at which the cost bound
          crosses the threshold *)

(* Integer d-th root, rounded down. *)
let iroot d n =
  if d <= 1 then n
  else begin
    let r = ref 0 in
    while
      let p = ref 1 in
      (try
         for _ = 1 to d do
           p := !p * (!r + 1);
           if !p > n then raise Exit
         done
       with Exit -> ());
      !p <= n
    do
      incr r
    done;
    !r
  end

let max_guard_size = 1024
(* a check_size walk touches up to k cells; beyond this the guard
   itself would rival the spawn overhead *)

let verdict_key t ~threshold key =
  match find t key with
  | None -> Keep
  | Some p -> (
    match p.cls with
    | Constant when det_closure t key && p.unit_hi <= threshold -> Small
    | (Linear | Poly _) when det_closure t key && p.dec <> None -> (
      let i = match p.dec with Some i -> i | None -> 0 in
      let c = max 1 p.unit_cost in
      let n = threshold / c in
      let k =
        match p.cls with
        | Linear -> n
        | Poly d -> iroot d n
        | Constant | Expo | Unknown -> 0
      in
      if k < 2 then Keep else Guard (i, min k max_guard_size))
    | Constant | Linear | Poly _ | Expo | Unknown -> Keep)

let verdict t ~threshold goal =
  match goal_key t.db goal with
  | None -> Keep
  | Some key -> verdict_key t ~threshold key

(* Bridge to the annotator: a position-based [Guard] becomes a
   [size_ge] check on the goal's actual argument.  A variable argument
   gets the run-time check; a ground argument resolves the guard
   statically; a partially instantiated argument could still grow at
   run time, so it conservatively keeps the parallel spawn. *)
let annotator t ~threshold : Term.t -> Prolog.Annotate.verdict =
 fun goal ->
  match verdict t ~threshold goal with
  | Keep -> Prolog.Annotate.Keep
  | Small -> Prolog.Annotate.Small
  | Guard (pos, k) -> (
    match goal with
    | Term.Struct (_, args) -> (
      match List.nth_opt args pos with
      | Some (Term.Var _ as arg) -> Prolog.Annotate.Guard (arg, k)
      | Some arg when Term.is_ground arg ->
        if Term.size arg >= k then Prolog.Annotate.Keep
        else Prolog.Annotate.Small
      | Some _ | None -> Prolog.Annotate.Keep)
    | Term.Atom _ | Term.Int _ | Term.Var _ -> Prolog.Annotate.Keep)
