(* Concrete interval evaluation: abstract execution of one query.

   The recurrence classes say how a predicate's cost *grows*; this
   module computes what one specific query actually *costs*, by
   executing the program over an argument-size domain seeded from the
   query's concrete terms:

     Unb        an unbound, unaliased variable (an output);
     Conc t     a fully ground term, kept concrete -- head matching,
                arithmetic and comparisons all decide exactly;
     Part f svs a structure with a known functor but holes
                (difference-list tails, serialise's pair values);
     Abs info   only sizes known: term size, list length, or an
                integer range -- the join of diverging branches.

   Evaluation follows first-solution semantics with an explicit
   honesty gate: a goal that fails (or may fail) after a
   nondeterministic goal in the same clause would force backtracking
   whose extent no size argument bounds, so the evaluator gives up
   ([queens], [query]) rather than underestimate.  Deterministic
   failure is fine and costed (the fall-through of [deriv]'s
   failure-driven driver, guard clauses in [partition]).

   Costs: one resolution step per user-goal invocation (matching the
   machine's inference counter, which ticks on call/execute only) and,
   per entered clause, the static per-instruction footprint table from
   {!Footprint}.  Memoized on (predicate, argument values); a fuel
   budget bounds pathological queries. *)

open Domain
module Term = Prolog.Term
module Cge = Prolog.Cge
module Database = Prolog.Database

exception Give_up of string

(* Signed value ranges for integer arguments (Domain.interval is
   non-negative and saturating; counts and sizes only). *)
type vrange = { vlo : int; vhi : int }

type sval =
  | Unb
  | Conc of Term.t
  | Part of string * sval list
  | Abs of absinfo

and absinfo = {
  a_size : interval option;
  a_len : interval option;
  a_val : vrange option;
}

let abs_top = Abs { a_size = None; a_len = None; a_val = None }
let abs_int v = Abs { a_size = Some (point 1); a_len = None; a_val = v }

let is_conc = function Conc _ -> true | _ -> false
let conc_term = function Conc t -> t | _ -> assert false

let rec size_of = function
  | Unb -> itv 1 cap
  | Conc t -> point (Term.size t)
  | Part (_, svs) ->
    List.fold_left (fun acc sv -> add acc (size_of sv)) (point 1) svs
  | Abs { a_size = Some s; _ } -> s
  | Abs _ -> itv 1 cap

let rec len_of = function
  | Conc t -> (
    match Term.to_list t with
    | Some l -> Some (point (List.length l))
    | None -> None)
  | Part (".", [ _; tl ]) -> (
    match len_of tl with Some l -> Some (shift 1 l) | None -> None)
  | Abs { a_len; _ } -> a_len
  | Unb | Part _ -> None

let val_of = function
  | Conc (Term.Int n) -> Some { vlo = n; vhi = n }
  | Abs { a_val; _ } -> a_val
  | _ -> None

(* Build the value of a term under an environment.  Collapses to Conc
   when every leaf is ground, keeps the spine as Part otherwise. *)
let rec build env (t : Term.t) : sval =
  match t with
  | Term.Atom _ | Term.Int _ -> Conc t
  | Term.Var v -> (
    match Hashtbl.find_opt env v with Some sv -> sv | None -> Unb)
  | Term.Struct (f, args) ->
    let svs = List.map (build env) args in
    if List.for_all is_conc svs then
      Conc (Term.Struct (f, List.map conc_term svs))
    else Part (f, svs)

(* ------------------------------------------------------------------ *)
(* Matching (one-sided unification: clause-head pattern against an
   argument value, binding the pattern's variables). *)

type tri = Yes | No | Maybe

let tri_and a b =
  match (a, b) with
  | No, _ | _, No -> No
  | Maybe, _ | _, Maybe -> Maybe
  | Yes, Yes -> Yes

let tri_not = function Yes -> No | No -> Yes | Maybe -> Maybe

(* Unification of two already-built values, as a test (no variable
   identity inside Part holes, so aliasing is not tracked; Unb
   unifies with anything). *)
let rec unify_sv a b =
  match (a, b) with
  | Unb, _ | _, Unb -> Yes
  | Conc x, Conc y -> if Term.equal x y then Yes else No
  | Conc (Term.Struct (f, xs)), Part (g, ys)
  | Part (g, ys), Conc (Term.Struct (f, xs)) ->
    if String.equal f g && List.length xs = List.length ys then
      List.fold_left2
        (fun acc x y -> tri_and acc (unify_sv (Conc x) y))
        Yes xs ys
    else No
  | Conc _, Part _ | Part _, Conc _ -> No
  | Part (f, xs), Part (g, ys) ->
    if String.equal f g && List.length xs = List.length ys then
      List.fold_left2 (fun acc x y -> tri_and acc (unify_sv x y)) Yes xs ys
    else No
  | Abs i, other | other, Abs i -> abs_vs i other

and abs_vs info other =
  (* no contradiction checkable beyond coarse shape tests *)
  match other with
  | Conc (Term.Int n) -> (
    match info.a_val with
    | Some { vlo; vhi } ->
      if vlo = n && vhi = n then Yes
      else if n < vlo || n > vhi then No
      else Maybe
    | None -> if info.a_len <> None then No else Maybe)
  | _ -> Maybe

let refine old sv =
  match (old, sv) with
  | Unb, _ -> sv
  | Conc _, _ -> old
  | _, Conc _ -> sv
  | _ -> old

let dec_len l = itv (max 0 (l.lo - 1)) (max 0 (l.hi - 1))

(* Match pattern [pat] against value [sv], binding pattern variables in
   [env].  Matching an unbound value is construction and always
   succeeds (the pattern's fresh variables stay unbound). *)
let rec match_pat env (pat : Term.t) (sv : sval) : tri =
  match pat with
  | Term.Var v -> (
    match Hashtbl.find_opt env v with
    | None ->
      Hashtbl.replace env v sv;
      Yes
    | Some old ->
      let r = unify_sv old sv in
      if r <> No then Hashtbl.replace env v (refine old sv);
      r)
  | Term.Atom a -> (
    match sv with
    | Unb -> Yes
    | Conc (Term.Atom b) -> if String.equal a b then Yes else No
    | Conc _ | Part _ -> No
    | Abs info -> (
      if info.a_val <> None then No
      else
        match info.a_len with
        | Some l when String.equal a "[]" ->
          if l.hi = 0 then Yes else if l.lo >= 1 then No else Maybe
        | Some _ -> No
        | None -> (
          match info.a_size with
          | Some s when s.lo > 1 -> No
          | _ -> Maybe)))
  | Term.Int n -> (
    match sv with
    | Unb -> Yes
    | Conc (Term.Int m) -> if n = m then Yes else No
    | Conc _ | Part _ -> No
    | Abs info -> abs_vs info (Conc (Term.Int n)))
  | Term.Struct (f, pargs) -> (
    let arity = List.length pargs in
    match sv with
    | Unb -> Yes (* construction *)
    | Conc (Term.Struct (g, targs))
      when String.equal f g && List.length targs = arity ->
      List.fold_left2
        (fun acc p a -> tri_and acc (match_pat env p (Conc a)))
        Yes pargs targs
    | Conc _ -> No
    | Part (g, svs) when String.equal f g && List.length svs = arity ->
      List.fold_left2
        (fun acc p a -> tri_and acc (match_pat env p a))
        Yes pargs svs
    | Part _ -> No
    | Abs info -> (
      if info.a_val <> None then No
      else
        match (f, pargs, info.a_len) with
        | ".", [ ph; pt ], Some l ->
          if l.hi = 0 then No
          else
            let sub =
              tri_and
                (match_pat env ph abs_top)
                (match_pat env pt
                   (Abs
                      {
                        a_size = None;
                        a_len = Some (dec_len l);
                        a_val = None;
                      }))
            in
            if l.lo >= 1 then sub else tri_and Maybe sub
        | _, _, Some _ -> No (* a proper list has no other functor *)
        | _, _, None -> (
          match info.a_size with
          | Some s when s.hi < 1 + arity -> No
          | Some s ->
            let inner = itv 1 (max 1 (s.hi - arity)) in
            List.iter
              (fun p ->
                ignore
                  (match_pat env p
                     (Abs
                        { a_size = Some inner; a_len = None; a_val = None })))
              pargs;
            Maybe
          | None ->
            List.iter (fun p -> ignore (match_pat env p abs_top)) pargs;
            Maybe)))

(* ------------------------------------------------------------------ *)
(* Arithmetic over value ranges. *)

let vcap = 1 lsl 60
let vsat n = if n > vcap then vcap else if n < -vcap then -vcap else n
let vpoint n = { vlo = n; vhi = n }

let rec arith env (t : Term.t) : vrange option =
  match t with
  | Term.Int n -> Some (vpoint n)
  | Term.Var _ -> val_of (build env t)
  | Term.Struct ("-", [ a ]) -> (
    match arith env a with
    | Some r -> Some { vlo = vsat (-r.vhi); vhi = vsat (-r.vlo) }
    | None -> None)
  | Term.Struct (op, [ a; b ]) -> (
    match (arith env a, arith env b) with
    | Some x, Some y -> (
      let pt f = Some (vpoint (vsat (f x.vlo y.vlo))) in
      let exact = x.vlo = x.vhi && y.vlo = y.vhi in
      match op with
      | "+" -> Some { vlo = vsat (x.vlo + y.vlo); vhi = vsat (x.vhi + y.vhi) }
      | "-" -> Some { vlo = vsat (x.vlo - y.vhi); vhi = vsat (x.vhi - y.vlo) }
      | "*" ->
        let c = [ x.vlo * y.vlo; x.vlo * y.vhi; x.vhi * y.vlo; x.vhi * y.vhi ] in
        Some
          {
            vlo = vsat (List.fold_left min max_int c);
            vhi = vsat (List.fold_left max min_int c);
          }
      | "//" when exact && y.vlo <> 0 -> pt (fun a b -> a / b)
      | "mod" when exact && y.vlo <> 0 ->
        pt (fun a b ->
            let r = a mod b in
            if r <> 0 && r * b < 0 then r + b else r)
      | _ -> None)
    | _ -> None)
  | Term.Atom _ | Term.Struct _ -> None

let cmp_tri op (x : vrange) (y : vrange) =
  let decide lt_all ge_all = if lt_all then Yes else if ge_all then No else Maybe in
  match op with
  | "<" -> decide (x.vhi < y.vlo) (x.vlo >= y.vhi)
  | ">" -> decide (x.vlo > y.vhi) (x.vhi <= y.vlo)
  | "=<" -> decide (x.vhi <= y.vlo) (x.vlo > y.vhi)
  | ">=" -> decide (x.vlo >= y.vhi) (x.vhi < y.vlo)
  | "=:=" ->
    if x.vlo = x.vhi && y.vlo = y.vhi then if x.vlo = y.vlo then Yes else No
    else if x.vhi < y.vlo || y.vhi < x.vlo then No
    else Maybe
  | "=\\=" ->
    tri_not
      (if x.vlo = x.vhi && y.vlo = y.vhi then if x.vlo = y.vlo then Yes else No
       else if x.vhi < y.vlo || y.vhi < x.vlo then No
       else Maybe)
  | _ -> Maybe

(* ------------------------------------------------------------------ *)
(* Joining results across clauses. *)

let rec join_sv a b =
  match (a, b) with
  | Conc x, Conc y when Term.equal x y -> a
  | Part (f, xs), Part (g, ys)
    when String.equal f g && List.length xs = List.length ys ->
    Part (f, List.map2 join_sv xs ys)
  | Unb, Unb -> Unb
  | _ ->
    let jopt f =
      match (f a, f b) with Some x, Some y -> Some (join x y) | _ -> None
    in
    let jval =
      match (val_of a, val_of b) with
      | Some x, Some y ->
        Some { vlo = min x.vlo y.vlo; vhi = max x.vhi y.vhi }
      | _ -> None
    in
    Abs
      {
        a_size = jopt (fun sv -> Some (size_of sv));
        a_len = jopt len_of;
        a_val = jval;
      }

(* ------------------------------------------------------------------ *)

type ores = {
  o_tri : tri;
  o_steps : interval;  (** inferences spent (attempted, on failure) *)
  o_refs : Footprint.t;
  o_nondet : bool;  (** may leave a viable alternative behind *)
  o_outs : sval array;
}

type state = {
  an : Analyze.t;
  memo : (Analyze.key * sval list, ores) Hashtbl.t;
  mutable fuel : int;
  mutable evals : int;
}

let goal_parts g =
  match g with
  | Term.Struct (f, args) -> (f, args)
  | Term.Atom f -> (f, [])
  | Term.Int _ | Term.Var _ -> ("", [])

(* A clause-body evaluation outcome. *)
type cres =
  | Cok of {
      tri : tri;
      steps : interval;
      refs : Footprint.t;
      nondet : bool;
      committed : bool;
      env : (string, sval) Hashtbl.t;
    }
  | Cfail of { steps : interval; refs : Footprint.t; committed : bool }

let rec eval_pred st (key : Analyze.key) (args : sval array) : ores =
  let mkey = (key, Array.to_list args) in
  match Hashtbl.find_opt st.memo mkey with
  | Some r -> r
  | None ->
    if st.fuel <= 0 then raise (Give_up "evaluation budget exhausted");
    st.fuel <- st.fuel - 1;
    st.evals <- st.evals + 1;
    let p =
      match Analyze.find st.an key with
      | Some p -> p
      | None -> raise (Give_up (Printf.sprintf "no info for %s/%d" (fst key) (snd key)))
    in
    let r = eval_clauses st p args in
    Hashtbl.replace st.memo mkey r;
    r

and head_match p args ci =
  let env = Hashtbl.create 8 in
  let pats = Analyze.head_args p.Analyze.clauses.(ci) in
  let tri = ref Yes in
  Array.iteri
    (fun i pat ->
      if !tri <> No then
        tri := tri_and !tri (match_pat env pat (if i < Array.length args then args.(i) else Unb)))
    pats;
  (!tri, env)

and eval_clauses st (p : Analyze.pinfo) args : ores =
  let n = Array.length p.Analyze.clauses in
  let acc_steps = ref zero in
  let acc_refs = ref (Footprint.nil ()) in
  let candidates = ref [] in
  (* (tri, steps, refs, nondet, committed, outs) *)
  let result = ref None in
  let later_matches ci =
    let rec go j =
      if j >= n then false
      else
        let tri, _ = head_match p args j in
        if tri <> No then true else go (j + 1)
    in
    go (ci + 1)
  in
  (try
     for ci = 0 to n - 1 do
       let head_tri, env = head_match p args ci in
       if head_tri <> No then begin
         match eval_body st p ci env head_tri with
         | Cfail { steps; refs; committed } ->
           acc_steps := add !acc_steps steps;
           acc_refs := Footprint.sum !acc_refs refs;
           if committed && head_tri = Yes then begin
             result :=
               Some
                 {
                   o_tri = No;
                   o_steps = !acc_steps;
                   o_refs = !acc_refs;
                   o_nondet = false;
                   o_outs = [||];
                 };
             raise Exit
           end
         | Cok c ->
           let outs =
             Array.map (fun pat -> build c.env pat)
               (Analyze.head_args p.Analyze.clauses.(ci))
           in
           let tri = tri_and head_tri c.tri in
           if tri = Yes then begin
             (* first solution found; alternatives left behind make the
                call nondeterministic even though we stop here *)
             let viable =
               c.nondet || ((not c.committed) && later_matches ci)
             in
             candidates :=
               (tri, c.steps, c.refs, viable, c.committed, outs)
               :: !candidates;
             raise Exit
           end
           else
             candidates :=
               (tri, c.steps, c.refs, c.nondet, c.committed, outs)
               :: !candidates
       end
     done
   with Exit -> ());
  match !result with
  | Some r -> r
  | None -> (
    match List.rev !candidates with
    | [] ->
      {
        o_tri = No;
        o_steps = !acc_steps;
        o_refs = !acc_refs;
        o_nondet = false;
        o_outs = [||];
      }
    | cands ->
      let last_tri, _, _, _, _, _ = List.nth cands (List.length cands - 1) in
      let tri = if last_tri = Yes then Yes else Maybe in
      (* candidates are tried in order until one sticks: the cost is at
         least the first attempted, at most all of them *)
      let steps =
        List.fold_left
          (fun acc (_, s, _, _, _, _) ->
            match acc with
            | None -> Some s
            | Some a -> Some { lo = min a.lo s.lo; hi = sat (a.hi + s.hi) })
          None cands
        |> Option.get
      in
      let refs =
        List.fold_left
          (fun acc (_, _, r, _, _, _) ->
            match acc with
            | None -> Some r
            | Some a ->
              Some
                (Array.init Trace.Area.count (fun i ->
                     {
                       lo = min a.(i).lo r.(i).lo;
                       hi = sat (a.(i).hi + r.(i).hi);
                     })))
          None cands
        |> Option.get
      in
      let nondet =
        List.length cands > 1
        || List.exists (fun (_, _, _, nd, _, _) -> nd) cands
      in
      let outs =
        match cands with
        | (_, _, _, _, _, o) :: rest ->
          List.fold_left
            (fun acc (_, _, _, _, _, o) ->
              if Array.length acc = Array.length o then Array.map2 join_sv acc o
              else acc)
            o rest
        | [] -> [||]
      in
      {
        o_tri = tri;
        o_steps = add !acc_steps steps;
        o_refs = Footprint.sum !acc_refs refs;
        o_nondet = nondet;
        o_outs = outs;
      })

and eval_body st (p : Analyze.pinfo) ci env head_tri : cres =
  let db = Analyze.database st.an in
  let clause = p.Analyze.clauses.(ci) in
  let cost = p.Analyze.costs.(ci) in
  let steps = ref zero in
  let refs = ref (Footprint.copy cost.Footprint.refs) in
  let nondet = ref false in
  let committed = ref false in
  let tri_acc = ref Yes in
  let definite = ref (head_tri = Yes) in
  let fail_with () =
    (* the clause's suffix after the failing goal never ran: keep the
       upper bound but halve the floor *)
    let refs =
      Array.map (fun i -> { lo = i.lo / 2; hi = i.hi }) !refs
    in
    Cfail { steps = !steps; refs; committed = !committed }
  in
  let exception Clause_failed in
  let handle_goal g =
    match g with
    | Term.Atom "!" ->
      if !definite then begin
        committed := true;
        nondet := false
      end
    | Term.Var _ -> raise (Give_up "call through a variable")
    | _ -> (
      match Analyze.goal_key db g with
      | Some gk ->
        let _, gargs = goal_parts g in
        let svals = Array.of_list (List.map (build env) gargs) in
        let sub = eval_pred st gk svals in
        steps := add !steps (add (point 1) sub.o_steps);
        refs := Footprint.sum !refs (Footprint.sum (sel_of st gk) sub.o_refs);
        (match sub.o_tri with
        | No ->
          if !nondet then
            raise (Give_up "failure after a nondeterministic goal");
          raise Clause_failed
        | Maybe ->
          if !nondet then
            raise (Give_up "possible failure after a nondeterministic goal");
          tri_acc := Maybe;
          definite := false;
          bind_outs env gargs sub.o_outs
        | Yes ->
          nondet := !nondet || sub.o_nondet;
          bind_outs env gargs sub.o_outs)
      | None -> (
        match eval_builtin env g with
        | Yes -> ()
        | No ->
          if !nondet then
            raise (Give_up "failure after a nondeterministic goal");
          raise Clause_failed
        | Maybe ->
          if !nondet then
            raise (Give_up "possible failure after a nondeterministic goal");
          tri_acc := Maybe;
          definite := false))
  in
  try
    List.iter
      (function
        | Cge.Lit g -> handle_goal g
        | Cge.Par { arms; _ } -> List.iter handle_goal arms)
      clause.Prolog.Database.body;
    Cok
      {
        tri = !tri_acc;
        steps = !steps;
        refs = !refs;
        nondet = !nondet;
        committed = !committed;
        env;
      }
  with Clause_failed -> fail_with ()

and sel_of st gk =
  match Analyze.find st.an gk with
  | Some p -> p.Analyze.sel
  | None -> Footprint.nil ()

(* After a callee succeeds, propagate its outputs into the caller's
   still-unbound goal-argument variables. *)
and bind_outs env gargs outs =
  List.iteri
    (fun i arg ->
      if i < Array.length outs then
        match arg with
        | Term.Var v -> (
          match Hashtbl.find_opt env v with
          | None | Some Unb -> Hashtbl.replace env v outs.(i)
          | Some old -> Hashtbl.replace env v (refine old outs.(i)))
        | _ -> ())
    gargs

and eval_builtin env g : tri =
  let f, args = goal_parts g in
  match (f, args) with
  | "true", [] -> Yes
  | ("fail" | "false"), [] -> No
  | "is", [ lhs; rhs ] -> (
    match arith env rhs with
    | Some r when r.vlo = r.vhi -> match_pat env lhs (Conc (Term.Int r.vlo))
    | Some r -> match_pat env lhs (abs_int (Some r))
    | None -> match_pat env lhs (abs_int None))
  | (("<" | ">" | "=<" | ">=" | "=:=" | "=\\=") as op), [ a; b ] -> (
    match (arith env a, arith env b) with
    | Some x, Some y -> cmp_tri op x y
    | _ -> Maybe)
  | "=", [ a; b ] -> match_pat env a (build env b)
  | "\\=", [ a; b ] ->
    (* as a test only; run on throwaway bindings *)
    let env' = Hashtbl.copy env in
    tri_not (match_pat env' a (build env' b))
  | "==", [ a; b ] -> (
    match (build env a, build env b) with
    | Conc x, Conc y -> if Term.equal x y then Yes else No
    | _ -> Maybe)
  | "\\==", [ a; b ] -> (
    match (build env a, build env b) with
    | Conc x, Conc y -> if Term.equal x y then No else Yes
    | _ -> Maybe)
  | ("@<" | "@>" | "@=<" | "@>="), [ _; _ ] -> Maybe
  | "var", [ a ] -> (
    match build env a with Unb -> Yes | Conc _ | Part _ -> No | Abs _ -> Maybe)
  | "nonvar", [ a ] -> (
    match build env a with Unb -> No | Conc _ | Part _ -> Yes | Abs _ -> Maybe)
  | "atom", [ a ] -> (
    match build env a with
    | Conc (Term.Atom _) -> Yes
    | Conc _ | Part _ | Unb -> No
    | Abs _ -> Maybe)
  | "integer", [ a ] -> (
    match build env a with
    | Conc (Term.Int _) -> Yes
    | Abs { a_val = Some _; _ } -> Yes
    | Conc _ | Part _ | Unb -> No
    | Abs _ -> Maybe)
  | "atomic", [ a ] -> (
    match build env a with
    | Conc (Term.Atom _) | Conc (Term.Int _) -> Yes
    | Abs { a_val = Some _; _ } -> Yes
    | Conc _ | Part _ | Unb -> No
    | Abs _ -> Maybe)
  | "compound", [ a ] -> (
    match build env a with
    | Conc (Term.Struct _) | Part _ -> Yes
    | Conc _ | Unb -> No
    | Abs _ -> Maybe)
  | "ground", [ a ] ->
    let rec g = function
      | Conc _ -> Yes
      | Unb -> No
      | Part (_, svs) -> List.fold_left (fun acc sv -> tri_and acc (g sv)) Yes svs
      | Abs _ -> Maybe
    in
    g (build env a)
  | ("write" | "print"), [ _ ] | "nl", [] -> Yes
  | "indep", [ _; _ ] -> Maybe
  | ("functor" | "arg" | "=.."), _ -> Maybe
  | _ ->
    raise
      (Give_up
         (Printf.sprintf "unsupported builtin %s/%d" f (List.length args)))

(* ------------------------------------------------------------------ *)
(* Whole-query prediction. *)

type prediction = {
  p_steps : interval;  (** resolution steps (machine inferences) *)
  p_refs : Footprint.t;  (** per-area references, Code included *)
  p_evals : int;  (** distinct abstract activations evaluated *)
  p_exactness : tri;  (** Yes: every branch decided *)
}

let default_budget = 400_000

let predict ?(budget = default_budget) an (query : Term.t) :
    (prediction, string) result =
  let db = Analyze.database an in
  let st = { an; memo = Hashtbl.create 1024; fuel = budget; evals = 0 } in
  let env = Hashtbl.create 8 in
  let goals = Term.conjuncts query in
  let steps = ref zero in
  let refs = ref (Footprint.nil ()) in
  let tri = ref Yes in
  (* query bootstrap: argument encoding writes one heap cell per
     encoded cell; the query's own put/call code is a handful of
     fetches *)
  let cells =
    List.fold_left
      (fun acc g ->
        let _, args = goal_parts g in
        List.fold_left (fun a t -> a + Footprint.encoded_cells t) acc args)
      0 goals
  in
  Footprint.add_area !refs Trace.Area.Heap (point cells);
  Footprint.add_area !refs Trace.Area.Code
    (itv (1 + List.length goals) (3 + cells + (3 * List.length goals)));
  try
    List.iter
      (fun g ->
        match Analyze.goal_key db g with
        | Some gk ->
          let _, gargs = goal_parts g in
          let svals = Array.of_list (List.map (build env) gargs) in
          let sub = eval_pred st gk svals in
          steps := add !steps (add (point 1) sub.o_steps);
          refs := Footprint.sum !refs (Footprint.sum (sel_of st gk) sub.o_refs);
          (match sub.o_tri with
          | No -> raise (Give_up "query predicted to fail")
          | Maybe -> tri := Maybe
          | Yes -> ());
          bind_outs env gargs sub.o_outs
        | None -> (
          match eval_builtin env g with
          | No -> raise (Give_up "query predicted to fail")
          | Maybe -> tri := Maybe
          | Yes -> ()))
      goals;
    Ok
      {
        p_steps = !steps;
        p_refs = !refs;
        p_evals = st.evals;
        p_exactness = !tri;
      }
  with Give_up reason -> Error reason
