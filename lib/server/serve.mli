(** The concurrent query server.

    A server holds one loaded database (source text), a static cost
    analysis of it, and optionally a shared {!Memo.Table}.  A batch of
    requests is served in two lanes chosen by admission control:

    {ul
    {- memo hits answer immediately from the table;}
    {- misses whose {!Costan.Analyze.verdict} is [Small] (statically
       cheaper than the spawn/queue overhead) run {e inline} on the
       accepting thread;}
    {- everything else ([Keep]/[Guard]) is queued and fanned out over
       an {!Engine.Pool} of worker domains, in waves of at most
       [max_queue] (queue-depth backpressure: a deeper backlog waits
       for the current wave to drain).}}

    Every execution parses and compiles the database fresh (the
    machines are single-shot), so worker domains share nothing but the
    memo table — which is what its sharded locks are for.  Computed
    answer sets are inserted back into the table from whichever domain
    finished first; variant-checking dedupes the race.

    Fault injection reuses the {!Resilience.Fault} registry: each
    admission passes the ["cell-start"] site, each execution the
    ["sim-step"] site.  A planned [Crash] is lethal (the caller maps
    it to exit 70, like the sweep engine); any other kind marks just
    that request as faulted. *)

type config = {
  src : string;  (** database source text *)
  pes : int;  (** 1 = sequential WAM; >1 = RAP-WAM simulation *)
  workers : int;  (** pool domains for the queued lane *)
  memo : Memo.Table.t option;  (** [None] = memoing off *)
  threshold : int;  (** admission-control cost threshold (data refs) *)
  max_queue : int;  (** wave size for the queued lane *)
  max_solutions : int;  (** answer-set cap (sequential engine only) *)
  faults : Resilience.Fault.plan option;
}

val config :
  ?pes:int -> ?workers:int -> ?memo:Memo.Table.t -> ?threshold:int ->
  ?max_queue:int -> ?max_solutions:int ->
  ?faults:Resilience.Fault.plan -> src:string -> unit -> config
(** Defaults: [pes = 1], [workers = Engine.Pool.default_jobs ()],
    no memo, [threshold = 150], [max_queue = 256],
    [max_solutions = 1], no faults.
    @raise Invalid_argument if [pes], [workers], [threshold],
    [max_queue] or [max_solutions] is not positive. *)

type t

val create : config -> t
(** Parses the database and runs the cost analysis once.
    @raise Prolog.Parser.Error or {!Prolog.Database.Load_error} on a
    bad source. *)

val config_of : t -> config

type request = { rq_id : int; rq_query : string }
type lane = Hit | Inline | Pooled

type response = {
  rs_id : int;
  rs_query : string;
  rs_answers : Memo.Canon.answer list;  (** solutions, [] on failure *)
  rs_lane : lane;
  rs_error : string option;  (** parse/runtime error, or injected fault *)
  rs_fault : bool;
      (** [rs_error] came from an injected (transient) fault, not from
          the program — the retry signal a supervisor keys on *)
  rs_latency_s : float;  (** batch arrival to completion *)
  rs_service_s : float;  (** execution only; 0 for memo hits *)
  rs_inferences : int;  (** 0 for memo hits *)
}

val serve : t -> request list -> response list
(** Serve one batch; responses come back in request order.  Re-raises
    {!Resilience.Fault.Injected} only for a planned [Crash]. *)

val run_direct : t -> string -> Memo.Canon.answer list
(** One query straight through the engine — no memo, no admission, no
    faults.  The cross-check oracle. *)

(** {2 Lane primitives}

    The pieces {!serve} is built from, exposed so a supervisor
    ({!Supervise}) can drive the same lanes under its own deadline,
    retry, and crash-containment discipline. *)

val verdict : t -> string -> Costan.Analyze.verdict
(** Admission verdict for one query text ([Keep] on a parse error —
    the engine will produce the real error message). *)

val lookup_hit :
  t -> t0:float -> key:Memo.Canon.key option -> request -> response option
(** The memo-hit lane: a finished [Hit] response, or [None] when the
    query must actually run.  Counts the hit. *)

val compute :
  ?recheck:bool ->
  t -> t0:float -> key:Memo.Canon.key option -> request -> response
(** Run one request to a response on the calling domain, publishing
    the answers to the memo table.  [~recheck:true] is the pooled
    lane's double-checked lookup.  The response comes back with
    [rs_lane = Inline] (or [Hit]); the caller relabels pooled work.
    Injected non-[Crash] faults become [rs_fault] responses; a planned
    [Crash] is re-raised. *)

type stats = {
  served : int;
  hits : int;
  inline_ : int;
  pooled : int;
  waves : int;
  max_depth : int;  (** deepest queued backlog seen at a batch start *)
  faulted : int;
  errors : int;
}

val stats : t -> stats
val latencies : t -> Metrics.t
val services : t -> Metrics.t
(** Per-execution service times (memo hits excluded). *)

val memo_totals : t -> Memo.Table.totals option
