(** The server traffic experiment: one deterministic request stream
    served three ways, cross-checked, and compared against the M/G/1
    queueing model.

    {ol
    {- {b memo_off}: a server without a table — every request runs.}
    {- {b cold}: a fresh server with an empty table — the zipfian mix
       populates it as it runs.}
    {- {b warm}: a second pass over the {e same} stream reusing the
       now-populated table.}}

    The acceptance claims ride on the phase comparison: the cold pass
    must already hit (skew means repeats), and the warm pass must beat
    the memo-off pass on throughput.  Answer correctness is checked by
    running every distinct pool query directly (no memo, no admission)
    and comparing canonical answer sets against the served responses.

    Fault plans apply to the {b cold} phase only, so the chaos run
    dies (or degrades) in the phase CI watches. *)

type params = {
  mix : Traffic.mix;
  seed : int;
  zipf_s : float;
  requests : int;
  batch : int;  (** requests per [Serve.serve] call *)
  pes : int;
  workers : int;
  memo_words : int;
  memo_shards : int;
  threshold : int;
  max_queue : int;
  max_solutions : int;
  faults : Resilience.Fault.plan option;
  policy : Supervise.policy;  (** supervision for every phase *)
  snapshot : string option;  (** save the table here after the run *)
  restore : string option;  (** warm-start the table from here *)
}

val default_params : ?quick:bool -> unit -> params
(** Full: 2000 requests over [deriv:24,qsort:24,tak:12,matrix:12].
    Quick: 400 requests over a smaller pool. *)

val validate : params -> (unit, string) result
(** Typed validation of the numeric parameters: every count must be a
    strictly positive integer, [zipf_s] strictly positive, and the mix
    non-empty with positive weights.  [Error] carries every problem,
    ";"-joined.  The CLI's converters enforce the same rules on flags;
    this covers programmatic callers. *)

type phase = {
  ph_name : string;
  ph_requests : int;
  ph_wall_s : float;
  ph_qps : float;
  ph_latency : Metrics.summary;
  ph_service : Metrics.summary;
  ph_hit_rate : float;  (** memo hits / served, this phase *)
  ph_stats : Serve.stats;
      (** classic shape: timeouts and contained crashes fold into
          [faulted] *)
  ph_sup : Supervise.stats;  (** the supervisor's full outcome counts *)
  ph_availability : float;
}

type mg1_check = {
  q_lambda : float;  (** per-worker arrival rate fed to the model *)
  q_service_s : float;
  q_cs2 : float;
  q_capped : bool;  (** lambda capped at 95% utilization *)
  q_predicted_s : float;
  q_measured_s : float;
  q_ratio : float;  (** predicted / measured mean latency *)
}

type outcome = {
  o_params : params;
  o_pool_size : int;
  o_off : phase;
  o_cold : phase;
  o_warm : phase;
  o_memo : Memo.Table.totals;  (** cumulative, after the warm pass *)
  o_snapshot_entries : int option;  (** when [params.snapshot] is set *)
  o_answers_checked : int;
  o_answers_equal : bool;
  o_mismatches : (string * string * string) list;
      (** query, served, direct — empty when equal *)
  o_mg1 : mg1_check;
}

val run : ?progress:(string -> unit) -> params -> outcome
(** Every phase runs through a {!Supervise.t} built from
    [params.policy].  Under the default policy a planned [Crash] is
    contained to its request; with [lethal_crash] it re-raises
    ({!Resilience.Fault.Injected}) and the CLIs map it to exit 70.
    @raise Invalid_argument when {!validate} rejects the params. *)

(** Acceptance invariants, derived (also serialized into the JSON so
    CI can grep them). *)

val hit_rate_ok : outcome -> bool
(** Cold-phase hit rate >= 0.5. *)

val warm_speedup_ok : outcome -> bool
(** Warm throughput strictly above memo-off throughput. *)

val p99_finite : outcome -> bool
val mg1_ratio_ok : outcome -> bool
(** Finite and > 0. *)

(** {2 The availability experiment}

    One stream served under a fault plan with full supervision, then
    warm, then snapshot → kill → restore → serve again. *)

type chaos = {
  c_params : params;
  c_pool_size : int;
  c_chaos : phase;  (** faults armed, policy in force *)
  c_warm : phase;  (** same table, faults spent — pre-restart baseline *)
  c_restart : phase;  (** fresh table warm-started from the snapshot *)
  c_snapshot_entries : int;
  c_restore : Memo.Snapshot.restore_stats;
  c_hit_delta : float;  (** |warm hit rate − restart hit rate| *)
  c_answers_checked : int;
  c_answers_equal : bool;
  c_mismatches : (string * string * string) list;
}

val run_chaos :
  ?progress:(string -> unit) -> ?snapshot_path:string -> params -> chaos
(** [snapshot_path] (or [params.snapshot]) is where the restart
    snapshot lands; defaults to a temp file that is removed after the
    restore.  [params.restore], when set, warm-starts the {e chaos}
    phase's table.  Raises like {!run}.
    @raise Invalid_argument when {!validate} rejects the params. *)

val availability_ok : chaos -> bool
(** Chaos-phase availability >= 0.95. *)

val warm_restart_ok : chaos -> bool
(** Restart hit rate within 5 points of the pre-restart warm rate. *)

val chaos_answers_ok : chaos -> bool
