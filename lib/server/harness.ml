(* The three-phase traffic experiment (memo_off / cold / warm), the
   answer cross-check, and the M/G/1 comparison. *)

type params = {
  mix : Traffic.mix;
  seed : int;
  zipf_s : float;
  requests : int;
  batch : int;
  pes : int;
  workers : int;
  memo_words : int;
  memo_shards : int;
  threshold : int;
  max_queue : int;
  max_solutions : int;
  faults : Resilience.Fault.plan option;
}

let default_params ?(quick = false) () =
  {
    mix =
      (if quick then [ ("qsort", 12); ("tak", 8); ("matrix", 6) ]
       else
         [ ("deriv", 24); ("qsort", 24); ("tak", 12); ("matrix", 12) ]);
    seed = 42;
    zipf_s = 1.1;
    requests = (if quick then 400 else 2000);
    batch = (if quick then 200 else 500);
    pes = 1;
    workers = Engine.Pool.default_jobs ();
    memo_words = 64 * 1024 * 1024 / 8;  (* 64 MB of 8-byte words *)
    memo_shards = 16;
    threshold = 150;
    max_queue = 256;
    max_solutions = 1;
    faults = None;
  }

type phase = {
  ph_name : string;
  ph_requests : int;
  ph_wall_s : float;
  ph_qps : float;
  ph_latency : Metrics.summary;
  ph_service : Metrics.summary;
  ph_hit_rate : float;
  ph_stats : Serve.stats;
}

type mg1_check = {
  q_lambda : float;
  q_service_s : float;
  q_cs2 : float;
  q_capped : bool;
  q_predicted_s : float;
  q_measured_s : float;
  q_ratio : float;
}

type outcome = {
  o_params : params;
  o_pool_size : int;
  o_off : phase;
  o_cold : phase;
  o_warm : phase;
  o_memo : Memo.Table.totals;
  o_answers_checked : int;
  o_answers_equal : bool;
  o_mismatches : (string * string * string) list;
  o_mg1 : mg1_check;
}

(* Typed validation of the numeric parameters.  The CLI's [pos_int]
   converter already rejects bad flag values, but programmatic callers
   build [params] records directly, so the library enforces the same
   discipline before committing to a run. *)
let validate p =
  let pos name v =
    if v <= 0 then
      Some (Printf.sprintf "%s must be a positive integer (got %d)" name v)
    else None
  in
  let problems =
    List.filter_map Fun.id
      [
        pos "requests" p.requests;
        pos "batch" p.batch;
        pos "pes" p.pes;
        pos "workers" p.workers;
        pos "memo_words" p.memo_words;
        pos "memo_shards" p.memo_shards;
        pos "threshold" p.threshold;
        pos "max_queue" p.max_queue;
        pos "max_solutions" p.max_solutions;
        (if p.zipf_s <= 0. then
           Some (Printf.sprintf "zipf_s must be positive (got %g)" p.zipf_s)
         else None);
        (if p.mix = [] then Some "mix must name at least one benchmark"
         else None);
        List.find_map
          (fun (name, w) ->
            if w <= 0 then
              Some
                (Printf.sprintf "mix weight for %s must be positive (got %d)"
                   name w)
            else None)
          p.mix;
      ]
  in
  match problems with [] -> Ok () | ps -> Error (String.concat "; " ps)

let batches ~batch requests =
  let n = Array.length requests in
  let out = ref [] in
  let pos = ref 0 in
  while !pos < n do
    let len = min batch (n - !pos) in
    out := Array.to_list (Array.sub requests !pos len) :: !out;
    pos := !pos + len
  done;
  List.rev !out

(* Serve the whole stream on [server], batch by batch, and summarize
   the phase from the server's own accounting (each phase uses a fresh
   Serve.t, so stats and metrics are per-phase even when the memo
   table is shared). *)
let run_phase ~name server requests ~batch =
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun b -> ignore (Serve.serve server b))
    (batches ~batch requests);
  let wall = Unix.gettimeofday () -. t0 in
  let st = Serve.stats server in
  {
    ph_name = name;
    ph_requests = st.Serve.served;
    ph_wall_s = wall;
    ph_qps =
      (if wall <= 0.0 then 0.0 else float_of_int st.Serve.served /. wall);
    ph_latency = Metrics.summary (Serve.latencies server);
    ph_service = Metrics.summary (Serve.services server);
    ph_hit_rate =
      (if st.Serve.served = 0 then 0.0
       else float_of_int st.Serve.hits /. float_of_int st.Serve.served);
    ph_stats = st;
  }

(* Served answers vs the direct engine: every distinct pool query,
   canonical text vs canonical text. *)
let cross_check oracle_server server pool =
  let mismatches = ref [] in
  let checked = ref 0 in
  Array.iter
    (fun query ->
      let direct = Serve.run_direct oracle_server query in
      let responses =
        Serve.serve server [ { Serve.rq_id = 0; rq_query = query } ]
      in
      match responses with
      | [ rs ] when rs.Serve.rs_error = None ->
        incr checked;
        let text answers =
          String.concat " ; " (List.map Memo.Canon.answer_text answers)
        in
        let served = text rs.Serve.rs_answers and want = text direct in
        if served <> want then
          mismatches := (query, served, want) :: !mismatches
      | _ -> ())
    pool;
  (!checked, List.rev !mismatches)

(* The M/G/1 cross-check reads the memo-off phase: service time from
   the measured per-execution distribution, arrival rate per worker
   from the measured throughput.  A batch-saturated server sits at the
   model's stability edge, so the arrival rate is capped at 95%
   utilization before evaluating — the cap is recorded. *)
let mg1_of ~service ~cs2 ~off ~workers =
  let arrival = off.ph_qps /. float_of_int (max 1 workers) in
  let cap = if service > 0.0 then 0.95 /. service else arrival in
  let capped = arrival > cap in
  let lambda = if capped then cap else arrival in
  let model = Queueing.Mg1.make ~cs2 ~lambda ~service () in
  let predicted = Queueing.Mg1.mean_response model in
  let measured = off.ph_latency.Metrics.mean_s in
  {
    q_lambda = lambda;
    q_service_s = service;
    q_cs2 = cs2;
    q_capped = capped;
    q_predicted_s = predicted;
    q_measured_s = measured;
    q_ratio = (if measured > 0.0 then predicted /. measured else 0.0);
  }

let run ?(progress = fun _ -> ()) p =
  (match validate p with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Server.Harness.run: " ^ msg));
  let src = Traffic.database p.mix in
  let pool = Traffic.pool p.mix ~seed:p.seed in
  let requests =
    Traffic.requests p.mix ~seed:p.seed ~s:p.zipf_s ~n:p.requests
  in
  let mk ?memo ?faults () =
    Serve.create
      (Serve.config ~pes:p.pes ~workers:p.workers ?memo
         ~threshold:p.threshold ~max_queue:p.max_queue
         ~max_solutions:p.max_solutions ?faults ~src ())
  in
  progress
    (Printf.sprintf "pool %d distinct queries, %d requests, zipf s=%.2f"
       (Array.length pool) p.requests p.zipf_s);
  (* phase 1: no table *)
  let off_server = mk () in
  let off = run_phase ~name:"memo_off" off_server requests ~batch:p.batch in
  progress
    (Printf.sprintf "memo_off: %.0f q/s, p99 %.2f ms" off.ph_qps
       (off.ph_latency.Metrics.p99_s *. 1000.0));
  (* phase 2: cold table; the chaos phase *)
  let memo =
    Memo.Table.create ~shards:p.memo_shards ~capacity_words:p.memo_words ()
  in
  let cold_server = mk ~memo ?faults:p.faults () in
  let cold = run_phase ~name:"cold" cold_server requests ~batch:p.batch in
  progress
    (Printf.sprintf "cold: %.0f q/s, hit rate %.2f" cold.ph_qps
       cold.ph_hit_rate);
  (* phase 3: same table, fresh accounting *)
  let warm_server = mk ~memo () in
  let warm = run_phase ~name:"warm" warm_server requests ~batch:p.batch in
  progress
    (Printf.sprintf "warm: %.0f q/s, hit rate %.2f" warm.ph_qps
       warm.ph_hit_rate);
  (* cross-check through yet another server sharing the table: answers
     must survive memoing; the oracle runs direct *)
  let checked, mismatches =
    cross_check off_server (mk ~memo ()) pool
  in
  let service, cs2 = Metrics.mean_and_cs2 (Serve.services off_server) in
  {
    o_params = p;
    o_pool_size = Array.length pool;
    o_off = off;
    o_cold = cold;
    o_warm = warm;
    o_memo = Memo.Table.totals memo;
    o_answers_checked = checked;
    o_answers_equal = mismatches = [];
    o_mismatches = mismatches;
    o_mg1 = mg1_of ~service ~cs2 ~off ~workers:p.workers;
  }

let hit_rate_ok o = o.o_cold.ph_hit_rate >= 0.5
let warm_speedup_ok o = o.o_warm.ph_qps > o.o_off.ph_qps

let p99_finite o =
  let f = o.o_cold.ph_latency.Metrics.p99_s in
  Float.is_finite f && f >= 0.0

let mg1_ratio_ok o =
  Float.is_finite o.o_mg1.q_ratio && o.o_mg1.q_ratio > 0.0
