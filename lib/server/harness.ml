(* The three-phase traffic experiment (memo_off / cold / warm), the
   answer cross-check, and the M/G/1 comparison. *)

type params = {
  mix : Traffic.mix;
  seed : int;
  zipf_s : float;
  requests : int;
  batch : int;
  pes : int;
  workers : int;
  memo_words : int;
  memo_shards : int;
  threshold : int;
  max_queue : int;
  max_solutions : int;
  faults : Resilience.Fault.plan option;
  policy : Supervise.policy;
  snapshot : string option;
  restore : string option;
}

let default_params ?(quick = false) () =
  {
    mix =
      (if quick then [ ("qsort", 12); ("tak", 8); ("matrix", 6) ]
       else
         [ ("deriv", 24); ("qsort", 24); ("tak", 12); ("matrix", 12) ]);
    seed = 42;
    zipf_s = 1.1;
    requests = (if quick then 400 else 2000);
    batch = (if quick then 200 else 500);
    pes = 1;
    workers = Engine.Pool.default_jobs ();
    memo_words = 64 * 1024 * 1024 / 8;  (* 64 MB of 8-byte words *)
    memo_shards = 16;
    threshold = 150;
    max_queue = 256;
    max_solutions = 1;
    faults = None;
    policy = Supervise.default_policy;
    snapshot = None;
    restore = None;
  }

type phase = {
  ph_name : string;
  ph_requests : int;
  ph_wall_s : float;
  ph_qps : float;
  ph_latency : Metrics.summary;
  ph_service : Metrics.summary;
  ph_hit_rate : float;
  ph_stats : Serve.stats;
  ph_sup : Supervise.stats;
  ph_availability : float;
}

type mg1_check = {
  q_lambda : float;
  q_service_s : float;
  q_cs2 : float;
  q_capped : bool;
  q_predicted_s : float;
  q_measured_s : float;
  q_ratio : float;
}

type outcome = {
  o_params : params;
  o_pool_size : int;
  o_off : phase;
  o_cold : phase;
  o_warm : phase;
  o_memo : Memo.Table.totals;
  o_snapshot_entries : int option;
  o_answers_checked : int;
  o_answers_equal : bool;
  o_mismatches : (string * string * string) list;
  o_mg1 : mg1_check;
}

(* Typed validation of the numeric parameters.  The CLI's [pos_int]
   converter already rejects bad flag values, but programmatic callers
   build [params] records directly, so the library enforces the same
   discipline before committing to a run. *)
let validate p =
  let pos name v =
    if v <= 0 then
      Some (Printf.sprintf "%s must be a positive integer (got %d)" name v)
    else None
  in
  let problems =
    List.filter_map Fun.id
      [
        pos "requests" p.requests;
        pos "batch" p.batch;
        pos "pes" p.pes;
        pos "workers" p.workers;
        pos "memo_words" p.memo_words;
        pos "memo_shards" p.memo_shards;
        pos "threshold" p.threshold;
        pos "max_queue" p.max_queue;
        pos "max_solutions" p.max_solutions;
        (if p.zipf_s <= 0. then
           Some (Printf.sprintf "zipf_s must be positive (got %g)" p.zipf_s)
         else None);
        (if p.mix = [] then Some "mix must name at least one benchmark"
         else None);
        List.find_map
          (fun (name, w) ->
            if w <= 0 then
              Some
                (Printf.sprintf "mix weight for %s must be positive (got %d)"
                   name w)
            else None)
          p.mix;
      ]
  in
  match problems with [] -> Ok () | ps -> Error (String.concat "; " ps)

let batches ~batch requests =
  let n = Array.length requests in
  let out = ref [] in
  let pos = ref 0 in
  while !pos < n do
    let len = min batch (n - !pos) in
    out := Array.to_list (Array.sub requests !pos len) :: !out;
    pos := !pos + len
  done;
  List.rev !out

(* The supervisor's view of a phase, shaped like the classic server
   stats so existing consumers keep reading: unavailable outcomes
   (timeouts, contained crashes, faults) all land in [faulted]. *)
let serve_shape (s : Supervise.stats) : Serve.stats =
  {
    Serve.served = s.Supervise.served;
    hits = s.Supervise.hits;
    inline_ = s.Supervise.inline_;
    pooled = s.Supervise.pooled;
    waves = s.Supervise.waves;
    max_depth = s.Supervise.max_depth;
    faulted =
      s.Supervise.faulted + s.Supervise.crashed + s.Supervise.timeouts;
    errors = s.Supervise.errors;
  }

(* Serve the whole stream on a supervised server, batch by batch, and
   summarize the phase from the supervisor's accounting (each phase
   uses a fresh Serve.t + Supervise.t, so stats and metrics are
   per-phase even when the memo table is shared). *)
let run_phase ~name sup requests ~batch =
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun b -> ignore (Supervise.serve sup b))
    (batches ~batch requests);
  let wall = Unix.gettimeofday () -. t0 in
  let st = Supervise.stats sup in
  let served = st.Supervise.served in
  {
    ph_name = name;
    ph_requests = served;
    ph_wall_s = wall;
    ph_qps = (if wall <= 0.0 then 0.0 else float_of_int served /. wall);
    ph_latency = Metrics.summary (Supervise.latencies sup);
    ph_service = Metrics.summary (Supervise.services sup);
    ph_hit_rate =
      (if served = 0 then 0.0
       else float_of_int st.Supervise.hits /. float_of_int served);
    ph_stats = serve_shape st;
    ph_sup = st;
    ph_availability = Supervise.availability st;
  }

(* Served answers vs the direct engine: every distinct pool query,
   canonical text vs canonical text. *)
let cross_check oracle_server server pool =
  let mismatches = ref [] in
  let checked = ref 0 in
  Array.iter
    (fun query ->
      let direct = Serve.run_direct oracle_server query in
      let responses =
        Serve.serve server [ { Serve.rq_id = 0; rq_query = query } ]
      in
      match responses with
      | [ rs ] when rs.Serve.rs_error = None ->
        incr checked;
        let text answers =
          String.concat " ; " (List.map Memo.Canon.answer_text answers)
        in
        let served = text rs.Serve.rs_answers and want = text direct in
        if served <> want then
          mismatches := (query, served, want) :: !mismatches
      | _ -> ())
    pool;
  (!checked, List.rev !mismatches)

(* The M/G/1 cross-check reads the memo-off phase: service time from
   the measured per-execution distribution, arrival rate per worker
   from the measured throughput.  A batch-saturated server sits at the
   model's stability edge, so the arrival rate is capped at 95%
   utilization before evaluating — the cap is recorded. *)
let mg1_of ~service ~cs2 ~off ~workers =
  let arrival = off.ph_qps /. float_of_int (max 1 workers) in
  let cap = if service > 0.0 then 0.95 /. service else arrival in
  let capped = arrival > cap in
  let lambda = if capped then cap else arrival in
  let model = Queueing.Mg1.make ~cs2 ~lambda ~service () in
  let predicted = Queueing.Mg1.mean_response model in
  let measured = off.ph_latency.Metrics.mean_s in
  {
    q_lambda = lambda;
    q_service_s = service;
    q_cs2 = cs2;
    q_capped = capped;
    q_predicted_s = predicted;
    q_measured_s = measured;
    q_ratio = (if measured > 0.0 then predicted /. measured else 0.0);
  }

let make_table p =
  Memo.Table.create ~shards:p.memo_shards ~capacity_words:p.memo_words ()

let restore_into ~progress p memo =
  match p.restore with
  | None -> None
  | Some path ->
    let st = Memo.Snapshot.restore memo path in
    progress
      (Printf.sprintf "restored %d entries from %s (%d skipped%s)"
         st.Memo.Snapshot.entries path st.Memo.Snapshot.skipped
         (if st.Memo.Snapshot.torn then ", torn tail" else ""));
    Some st

(* Save the table, arming the ["snapshot-write"] site if the plan has
   anything left for it.  An injected non-crash write failure is
   contained — the snapshot is simply lost or torn, which is the
   scenario restore salvages — while a planned [Crash] under the
   lethal policy keeps the classic abort contract. *)
let save_snapshot ~progress p memo path =
  match Memo.Snapshot.save ?plan:p.faults memo path with
  | entries ->
    progress (Printf.sprintf "snapshot: %d entries to %s" entries path);
    entries
  | exception
      (Resilience.Fault.Injected { kind = Resilience.Fault.Crash; _ } as e)
    when p.policy.Supervise.lethal_crash ->
    raise e
  | exception Resilience.Fault.Injected { site; kind; occurrence } ->
    progress
      (Printf.sprintf "snapshot lost: injected %s at %s#%d"
         (Resilience.Fault.kind_name kind) site occurrence);
    0

let run ?(progress = fun _ -> ()) p =
  (match validate p with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Server.Harness.run: " ^ msg));
  let src = Traffic.database p.mix in
  let pool = Traffic.pool p.mix ~seed:p.seed in
  let requests =
    Traffic.requests p.mix ~seed:p.seed ~s:p.zipf_s ~n:p.requests
  in
  let mk ?memo ?faults () =
    Serve.create
      (Serve.config ~pes:p.pes ~workers:p.workers ?memo
         ~threshold:p.threshold ~max_queue:p.max_queue
         ~max_solutions:p.max_solutions ?faults ~src ())
  in
  let sup server = Supervise.create ~policy:p.policy server in
  progress
    (Printf.sprintf "pool %d distinct queries, %d requests, zipf s=%.2f"
       (Array.length pool) p.requests p.zipf_s);
  (* phase 1: no table *)
  let off_server = mk () in
  let off_sup = sup off_server in
  let off = run_phase ~name:"memo_off" off_sup requests ~batch:p.batch in
  progress
    (Printf.sprintf "memo_off: %.0f q/s, p99 %.2f ms" off.ph_qps
       (off.ph_latency.Metrics.p99_s *. 1000.0));
  (* phase 2: cold table (warm-started when restoring); the chaos phase *)
  let memo = make_table p in
  ignore (restore_into ~progress p memo);
  let cold_server = mk ~memo ?faults:p.faults () in
  let cold = run_phase ~name:"cold" (sup cold_server) requests ~batch:p.batch in
  progress
    (Printf.sprintf "cold: %.0f q/s, hit rate %.2f, availability %.3f"
       cold.ph_qps cold.ph_hit_rate cold.ph_availability);
  (* phase 3: same table, fresh accounting *)
  let warm_server = mk ~memo () in
  let warm = run_phase ~name:"warm" (sup warm_server) requests ~batch:p.batch in
  progress
    (Printf.sprintf "warm: %.0f q/s, hit rate %.2f" warm.ph_qps
       warm.ph_hit_rate);
  let snapshot_entries =
    Option.map (save_snapshot ~progress p memo) p.snapshot
  in
  (* cross-check through yet another server sharing the table: answers
     must survive memoing; the oracle runs direct *)
  let checked, mismatches =
    cross_check off_server (mk ~memo ()) pool
  in
  let service, cs2 = Metrics.mean_and_cs2 (Supervise.services off_sup) in
  {
    o_params = p;
    o_pool_size = Array.length pool;
    o_off = off;
    o_cold = cold;
    o_warm = warm;
    o_memo = Memo.Table.totals memo;
    o_snapshot_entries = snapshot_entries;
    o_answers_checked = checked;
    o_answers_equal = mismatches = [];
    o_mismatches = mismatches;
    o_mg1 = mg1_of ~service ~cs2 ~off ~workers:p.workers;
  }

let hit_rate_ok o = o.o_cold.ph_hit_rate >= 0.5
let warm_speedup_ok o = o.o_warm.ph_qps > o.o_off.ph_qps

let p99_finite o =
  let f = o.o_cold.ph_latency.Metrics.p99_s in
  Float.is_finite f && f >= 0.0

let mg1_ratio_ok o =
  Float.is_finite o.o_mg1.q_ratio && o.o_mg1.q_ratio > 0.0

(* ------------------------------------------------------------------ *)
(* The availability experiment: one stream served under faults + full
   supervision, then warm, then snapshot -> kill -> restore -> serve
   again.  The claims: the supervised server stays >= 95% available
   through the chaos, answers survive it, and a hot restart from the
   snapshot warm-starts the hit rate to within 5 points of the
   pre-restart table. *)

type chaos = {
  c_params : params;
  c_pool_size : int;
  c_chaos : phase;
  c_warm : phase;
  c_restart : phase;
  c_snapshot_entries : int;
  c_restore : Memo.Snapshot.restore_stats;
  c_hit_delta : float;
  c_answers_checked : int;
  c_answers_equal : bool;
  c_mismatches : (string * string * string) list;
}

let run_chaos ?(progress = fun _ -> ()) ?snapshot_path p =
  (match validate p with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Server.Harness.run_chaos: " ^ msg));
  let src = Traffic.database p.mix in
  let pool = Traffic.pool p.mix ~seed:p.seed in
  let requests =
    Traffic.requests p.mix ~seed:p.seed ~s:p.zipf_s ~n:p.requests
  in
  let mk ?memo ?faults () =
    Serve.create
      (Serve.config ~pes:p.pes ~workers:p.workers ?memo
         ~threshold:p.threshold ~max_queue:p.max_queue
         ~max_solutions:p.max_solutions ?faults ~src ())
  in
  let sup server = Supervise.create ~policy:p.policy server in
  let snapshot_path, temp_snapshot =
    match (snapshot_path, p.snapshot) with
    | Some path, _ -> (path, false)
    | None, Some path -> (path, false)
    | None, None -> (Filename.temp_file "rapwam-memo" ".snapshot", true)
  in
  progress
    (Printf.sprintf "pool %d distinct queries, %d requests, faults [%s]"
       (Array.length pool) p.requests
       (match p.faults with
       | None -> ""
       | Some plan -> Resilience.Fault.to_string plan));
  (* phase 1: the chaos phase — fresh (or restored) table, fault plan
     armed, full supervision *)
  let memo = make_table p in
  ignore (restore_into ~progress p memo);
  let chaos_server = mk ~memo ?faults:p.faults () in
  let chaos =
    run_phase ~name:"chaos" (sup chaos_server) requests ~batch:p.batch
  in
  progress
    (Printf.sprintf "chaos: %.0f q/s, availability %.3f, hit rate %.2f"
       chaos.ph_qps chaos.ph_availability chaos.ph_hit_rate);
  (* phase 2: same table, faults spent — the pre-restart baseline *)
  let warm = run_phase ~name:"warm" (sup (mk ~memo ())) requests ~batch:p.batch in
  progress
    (Printf.sprintf "warm: %.0f q/s, hit rate %.2f" warm.ph_qps
       warm.ph_hit_rate);
  (* snapshot, "kill", restore into a brand-new table *)
  let snapshot_entries = save_snapshot ~progress p memo snapshot_path in
  let memo2 = make_table p in
  let restore_stats =
    if Sys.file_exists snapshot_path then
      Memo.Snapshot.restore memo2 snapshot_path
    else { Memo.Snapshot.entries = 0; skipped = 0; torn = false }
  in
  if temp_snapshot && Sys.file_exists snapshot_path then
    Sys.remove snapshot_path;
  progress
    (Printf.sprintf "restart: restored %d/%d entries"
       restore_stats.Memo.Snapshot.entries snapshot_entries);
  (* phase 3: the restarted server, warm from the snapshot alone *)
  let restart =
    run_phase ~name:"restart" (sup (mk ~memo:memo2 ())) requests
      ~batch:p.batch
  in
  progress
    (Printf.sprintf "restart: %.0f q/s, hit rate %.2f" restart.ph_qps
       restart.ph_hit_rate);
  let checked, mismatches = cross_check (mk ()) (mk ~memo:memo2 ()) pool in
  {
    c_params = p;
    c_pool_size = Array.length pool;
    c_chaos = chaos;
    c_warm = warm;
    c_restart = restart;
    c_snapshot_entries = snapshot_entries;
    c_restore = restore_stats;
    c_hit_delta = Float.abs (warm.ph_hit_rate -. restart.ph_hit_rate);
    c_answers_checked = checked;
    c_answers_equal = mismatches = [];
    c_mismatches = mismatches;
  }

let availability_ok c = c.c_chaos.ph_availability >= 0.95
let warm_restart_ok c = c.c_hit_delta <= 0.05
let chaos_answers_ok c = c.c_answers_equal
