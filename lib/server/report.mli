(** Rendering for the traffic experiment: the BENCH_server.json
    artifact (written atomically) and a human-readable summary.

    The JSON carries the acceptance invariants as pre-evaluated
    booleans ([answers_equal], [hit_rate_ok], [warm_speedup_ok],
    [p99_finite], [mg1_ratio_ok]) so CI can grep instead of parsing
    floats. *)

val write_json : string -> Harness.outcome -> unit
val to_json_string : Harness.outcome -> string
val pp : Format.formatter -> Harness.outcome -> unit

(** The availability experiment's artifact, BENCH_chaos.json: phases
    with per-outcome counts, snapshot/restore accounting, and the
    pre-evaluated gates [availability_ok], [warm_restart_ok], and
    [answers_equal]. *)

val write_chaos_json : string -> Harness.chaos -> unit
val chaos_to_json_string : Harness.chaos -> string
val pp_chaos : Format.formatter -> Harness.chaos -> unit
