(** Rendering for the traffic experiment: the BENCH_server.json
    artifact (written atomically) and a human-readable summary.

    The JSON carries the acceptance invariants as pre-evaluated
    booleans ([answers_equal], [hit_rate_ok], [warm_speedup_ok],
    [p99_finite], [mg1_ratio_ok]) so CI can grep instead of parsing
    floats. *)

val write_json : string -> Harness.outcome -> unit
val to_json_string : Harness.outcome -> string
val pp : Format.formatter -> Harness.outcome -> unit
