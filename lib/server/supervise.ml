(* The supervisor: availability discipline wrapped around the query
   server's lanes.

   {!Serve.serve} answers a batch correctly or dies trying; this layer
   makes the dying bounded.  It drives the same three lanes through
   {!Serve}'s exposed primitives, but every execution runs under a
   deadline + seeded-backoff retry ({!Engine.Job}'s watchdog), a
   worker crash poisons only its own request (the pool is respawned
   for the remainder), a predicate whose recent pooled runs keep
   failing gets a circuit breaker in front of it, and a backlog over
   the high-watermark is shed cheapest-to-refuse-first.  Memo hits and
   Small-inline work stay live throughout — the point of admission
   control is knowing which work is too cheap to refuse.

   Threading: all supervision state (counters, breaker circuits, the
   breaker clock, metrics) is read and written on the accepting thread
   only.  Worker domains run {!Serve.compute} and nothing else, so the
   only shared state is the memo table, which is already sharded. *)

type outcome = Ok | Retried of int | Timeout | Shed | Crashed | Faulted

let outcome_name = function
  | Ok -> "ok"
  | Retried _ -> "retried"
  | Timeout -> "timeout"
  | Shed -> "shed"
  | Crashed -> "crashed"
  | Faulted -> "faulted"

let available = function Ok | Retried _ -> true | _ -> false

type response = {
  sv : Serve.response;
  sv_outcome : outcome;
  sv_attempts : int;
}

(* ------------------------------------------------------------------ *)
(* Policy. *)

type breaker_cfg = {
  window : int;
  trip_ratio : float;
  min_samples : int;
  cooldown : int;
}

let breaker_default =
  { window = 8; trip_ratio = 0.5; min_samples = 4; cooldown = 64 }

let breaker_of_spec spec =
  let cfg = breaker_default in
  match String.trim spec with
  | "" | "on" | "default" -> Stdlib.Ok cfg
  | spec ->
    let items =
      List.filter (fun s -> s <> "")
        (List.map String.trim (String.split_on_char ',' spec))
    in
    List.fold_left
      (fun acc item ->
        match acc with
        | Stdlib.Error _ as e -> e
        | Stdlib.Ok cfg -> (
          match String.index_opt item '=' with
          | None ->
            Stdlib.Error
              (Printf.sprintf "breaker %S: expected KEY=VALUE" item)
          | Some i -> (
            let k = String.sub item 0 i in
            let v = String.sub item (i + 1) (String.length item - i - 1) in
            let int_v () =
              match int_of_string_opt v with
              | Some n when n >= 1 -> Stdlib.Ok n
              | _ ->
                Stdlib.Error
                  (Printf.sprintf "breaker %s=%S: expected a positive int" k v)
            in
            match k with
            | "window" ->
              Stdlib.Result.map (fun n -> { cfg with window = n }) (int_v ())
            | "min" ->
              Stdlib.Result.map
                (fun n -> { cfg with min_samples = n })
                (int_v ())
            | "cooldown" ->
              Stdlib.Result.map (fun n -> { cfg with cooldown = n }) (int_v ())
            | "trip" -> (
              match float_of_string_opt v with
              | Some r when r > 0. && r <= 1. ->
                Stdlib.Ok { cfg with trip_ratio = r }
              | _ ->
                Stdlib.Error
                  (Printf.sprintf "breaker trip=%S: expected a ratio in (0,1]"
                     v))
            | _ ->
              Stdlib.Error
                (Printf.sprintf
                   "breaker %S: unknown key (window|trip|min|cooldown)" item))))
      (Stdlib.Ok cfg) items

type policy = {
  deadline_s : float option;
  retries : int;
  breaker : breaker_cfg option;
  shed_watermark : int option;
  lethal_crash : bool;
}

let default_policy =
  {
    deadline_s = None;
    retries = 0;
    breaker = None;
    shed_watermark = None;
    lethal_crash = false;
  }

let policy ?deadline_s ?(retries = 0) ?breaker ?shed_watermark
    ?(lethal_crash = false) () =
  (match deadline_s with
  | Some d when d <= 0. ->
    invalid_arg "Supervise.policy: deadline_s must be positive"
  | _ -> ());
  if retries < 0 then invalid_arg "Supervise.policy: retries must be >= 0";
  (match shed_watermark with
  | Some w when w < 1 ->
    invalid_arg "Supervise.policy: shed_watermark must be >= 1"
  | _ -> ());
  { deadline_s; retries; breaker; shed_watermark; lethal_crash }

(* ------------------------------------------------------------------ *)
(* Breaker circuits: one per predicate spec, accepting-thread only.
   The clock is a count of pooled admissions, not wall time, so the
   state machine is deterministic for a given request stream. *)

type circuit_state = Closed | Open of int (* until clock *) | Half_open

type circuit = {
  mutable cstate : circuit_state;
  mutable recent : bool list;  (* true = failure; newest first *)
  mutable n_recent : int;
}

type t = {
  server : Serve.t;
  pol : policy;
  circuits : (string, circuit) Hashtbl.t;
  mutable clock : int;
  (* outcome counters, all accepting-thread *)
  mutable served : int;
  mutable ok : int;
  mutable retried : int;
  mutable timeouts : int;
  mutable shed : int;
  mutable crashed : int;
  mutable faulted : int;
  mutable errors : int;
  mutable hits : int;
  mutable inline_ : int;
  mutable pooled : int;
  mutable waves : int;
  mutable max_depth : int;
  mutable breaker_opens : int;
  mutable breaker_fastfails : int;
  mutable pool_respawns : int;
  lat : Metrics.t;
  svc : Metrics.t;
}

let create ?(policy = default_policy) server =
  {
    server;
    pol = policy;
    circuits = Hashtbl.create 16;
    clock = 0;
    served = 0;
    ok = 0;
    retried = 0;
    timeouts = 0;
    shed = 0;
    crashed = 0;
    faulted = 0;
    errors = 0;
    hits = 0;
    inline_ = 0;
    pooled = 0;
    waves = 0;
    max_depth = 0;
    breaker_opens = 0;
    breaker_fastfails = 0;
    pool_respawns = 0;
    lat = Metrics.create ();
    svc = Metrics.create ();
  }

let server t = t.server
let policy_of t = t.pol

let circuit t spec =
  match Hashtbl.find_opt t.circuits spec with
  | Some c -> c
  | None ->
    let c = { cstate = Closed; recent = []; n_recent = 0 } in
    Hashtbl.add t.circuits spec c;
    c

let spec_of key =
  match key with Some k -> k.Memo.Canon.spec | None -> "?/0"

(* Record one pooled execution outcome against its circuit. *)
let record_outcome t cfg spec ~fail =
  let c = circuit t spec in
  match c.cstate with
  | Half_open ->
    (* the probe's verdict decides *)
    if fail then begin
      c.cstate <- Open (t.clock + cfg.cooldown);
      t.breaker_opens <- t.breaker_opens + 1
    end
    else begin
      c.cstate <- Closed;
      c.recent <- [];
      c.n_recent <- 0
    end
  | Open _ -> ()  (* an in-flight request finished after the trip *)
  | Closed ->
    let recent =
      if c.n_recent >= cfg.window then
        List.filteri (fun i _ -> i < cfg.window - 1) c.recent
      else c.recent
    in
    c.recent <- fail :: recent;
    c.n_recent <- min cfg.window (c.n_recent + 1);
    if c.n_recent >= cfg.min_samples then begin
      let fails = List.length (List.filter Fun.id c.recent) in
      if float_of_int fails /. float_of_int c.n_recent >= cfg.trip_ratio
      then begin
        c.cstate <- Open (t.clock + cfg.cooldown);
        t.breaker_opens <- t.breaker_opens + 1
      end
    end

(* ------------------------------------------------------------------ *)
(* Responses the supervisor synthesizes itself (nothing ran). *)

let now () = Unix.gettimeofday ()

let refusal ~t0 ~lane ~outcome ~fault msg (rq : Serve.request) =
  {
    sv =
      {
        Serve.rs_id = rq.Serve.rq_id;
        rs_query = rq.Serve.rq_query;
        rs_answers = [];
        rs_lane = lane;
        rs_error = Some msg;
        rs_fault = fault;
        rs_latency_s = now () -. t0;
        rs_service_s = 0.0;
        rs_inferences = 0;
      };
    sv_outcome = outcome;
    sv_attempts = 0;
  }

let fault_message site kind occurrence =
  Printf.sprintf "injected %s at %s#%d"
    (Resilience.Fault.kind_name kind) site occurrence

(* ------------------------------------------------------------------ *)
(* One supervised execution: Serve.compute under deadline + retry.
   Runs on whatever domain calls it; everything it touches is
   domain-safe.  A transient response (rs_fault) is turned into an
   exception so Job's retry machinery drives re-execution; the real
   response rides along in [slot] because Job stringifies payloads of
   failures. *)

exception Transient of string

let execute t ~t0 ~key ~recheck (rq : Serve.request) =
  let slot = Atomic.make None in
  let thunk () =
    let rs = Serve.compute ~recheck t.server ~t0 ~key rq in
    Atomic.set slot (Some rs);
    if rs.Serve.rs_fault then
      raise
        (Transient
           (match rs.Serve.rs_error with Some m -> m | None -> "fault"));
    rs
  in
  let job = Engine.Job.make ~key:(Printf.sprintf "rq-%d" rq.Serve.rq_id) thunk in
  let completed =
    match t.pol.deadline_s with
    | Some timeout_s ->
      Engine.Job.run
        ~watchdog:
          (Engine.Job.watchdog ~timeout_s ~max_attempts:(t.pol.retries + 1) ())
        job
    | None -> Engine.Job.run ~retries:t.pol.retries job
  in
  match completed.Engine.Job.outcome with
  | Stdlib.Ok rs ->
    let out =
      if completed.Engine.Job.attempts > 1 then Retried (completed.Engine.Job.attempts - 1)
      else Ok
    in
    { sv = rs; sv_outcome = out; sv_attempts = completed.Engine.Job.attempts }
  | Stdlib.Error msg ->
    let fin = now () in
    let base =
      match Atomic.get slot with
      | Some rs -> { rs with Serve.rs_latency_s = fin -. t0 }
      | None ->
        {
          Serve.rs_id = rq.Serve.rq_id;
          rs_query = rq.Serve.rq_query;
          rs_answers = [];
          rs_lane = Serve.Inline;
          rs_error = Some msg;
          rs_fault = true;
          rs_latency_s = fin -. t0;
          rs_service_s = completed.Engine.Job.wall_s;
          rs_inferences = 0;
        }
    in
    if completed.Engine.Job.timed_out then
      {
        sv =
          {
            base with
            Serve.rs_error =
              Some
                (Printf.sprintf "deadline exceeded (%gs, %d attempts)"
                   (match t.pol.deadline_s with Some d -> d | None -> 0.)
                   completed.Engine.Job.attempts);
            rs_fault = true;
            rs_answers = [];
          };
        sv_outcome = Timeout;
        sv_attempts = completed.Engine.Job.attempts;
      }
    else
      {
        sv = { base with Serve.rs_fault = true; rs_answers = [] };
        sv_outcome = Faulted;
        sv_attempts = completed.Engine.Job.attempts;
      }

(* ------------------------------------------------------------------ *)
(* The pooled lane with crash containment: run a wave through
   {!Engine.Pool.map_salvage}; a poisoned item becomes one [Crashed]
   response and a fresh pool is spawned for whatever the dying wave
   abandoned. *)

let run_wave t ~t0 (slice : (Serve.request * Memo.Canon.key option) array) =
  let n = Array.length slice in
  let results = Array.make n None in
  let lethal_crash e =
    match e with
    | Resilience.Fault.Injected { kind = Resilience.Fault.Crash; _ } -> true
    | _ -> false
  in
  let rounds = ref 0 in
  let pending () =
    Array.of_list
      (List.filter
         (fun i -> results.(i) = None)
         (List.init n (fun i -> i)))
  in
  let finished = ref false in
  while not !finished do
    let idx = pending () in
    if Array.length idx = 0 then finished := true
    else begin
      incr rounds;
      if !rounds > 1 then t.pool_respawns <- t.pool_respawns + 1;
      let out, poison =
        Engine.Pool.map_salvage ~jobs:(Serve.config_of t.server).Serve.workers
          (fun i ->
            let rq, key = slice.(i) in
            let r = execute t ~t0 ~key ~recheck:true rq in
            let r =
              if r.sv.Serve.rs_lane = Serve.Hit then r
              else { r with sv = { r.sv with Serve.rs_lane = Serve.Pooled } }
            in
            (i, r))
          idx
      in
      Array.iter
        (function Some (i, r) -> results.(i) <- Some r | None -> ())
        out;
      (match poison with
      | None -> ()
      | Some (j, e, bt) ->
        if t.pol.lethal_crash && lethal_crash e then
          Printexc.raise_with_backtrace e bt
        else if j >= 0 then begin
          (* blame exactly the item that raised; the rest rerun *)
          let rq, _ = slice.(idx.(j)) in
          results.(idx.(j)) <-
            Some
              (refusal ~t0 ~lane:Serve.Pooled ~outcome:Crashed ~fault:true
                 (Printf.sprintf "worker crashed: %s" (Printexc.to_string e))
                 rq)
        end
        else if !rounds > n + 1 then begin
          (* a helper domain keeps dying with no item to blame:
             give up on the remainder rather than loop forever *)
          Array.iter
            (fun i ->
              if results.(i) = None then
                let rq, _ = slice.(i) in
                results.(i) <-
                  Some
                    (refusal ~t0 ~lane:Serve.Pooled ~outcome:Crashed
                       ~fault:true
                       (Printf.sprintf "worker pool died: %s"
                          (Printexc.to_string e))
                       rq))
            (pending ())
        end)
    end
  done;
  Array.map
    (function Some r -> r | None -> assert false)
    results

(* ------------------------------------------------------------------ *)
(* Serving. *)

let serve t (requests : Serve.request list) : response list =
  let t0 = now () in
  let plan = (Serve.config_of t.server).Serve.faults in
  let queued = ref [] in
  (* admission: hits and Small inline answer now; a planned admission
     fault poisons only this request *)
  let admitted =
    List.map
      (fun (rq : Serve.request) ->
        match Resilience.Fault.hit ?plan "cell-start" with
        | exception
            (Resilience.Fault.Injected { kind = Resilience.Fault.Crash; _ } as
             e)
          when t.pol.lethal_crash ->
          raise e
        | exception Resilience.Fault.Injected
            { site; kind = Resilience.Fault.Crash; occurrence } ->
          `Done
            (refusal ~t0 ~lane:Serve.Inline ~outcome:Crashed ~fault:true
               (fault_message site Resilience.Fault.Crash occurrence)
               rq)
        | exception Resilience.Fault.Injected { site; kind; occurrence } ->
          `Done
            (refusal ~t0 ~lane:Serve.Inline ~outcome:Faulted ~fault:true
               (fault_message site kind occurrence)
               rq)
        | () -> (
          let key =
            match Memo.Canon.key_of_query rq.Serve.rq_query with
            | Stdlib.Ok key -> Some key
            | Stdlib.Error _ -> None
          in
          match Serve.lookup_hit t.server ~t0 ~key rq with
          | Some rs -> `Done { sv = rs; sv_outcome = Ok; sv_attempts = 0 }
          | None -> (
            match Serve.verdict t.server rq.Serve.rq_query with
            | Costan.Analyze.Small -> (
              match execute t ~t0 ~key ~recheck:false rq with
              | r -> `Done r
              | exception
                  (Resilience.Fault.Injected
                     { kind = Resilience.Fault.Crash; _ } as e)
                when not t.pol.lethal_crash ->
                (* an injected crash on the inline lane: contained to
                   this request (Job lets Crash through by design) *)
                `Done
                  (refusal ~t0 ~lane:Serve.Inline ~outcome:Crashed
                     ~fault:true
                     (Printf.sprintf "worker crashed: %s"
                        (Printexc.to_string e))
                     rq))
            | (Costan.Analyze.Keep | Costan.Analyze.Guard _) as v ->
              queued := (rq, key, v) :: !queued;
              `Queued rq.Serve.rq_id)))
      requests
  in
  let backlog = List.rev !queued in
  (* breaker: refuse pooled work on predicates that keep failing;
     the clock ticks once per pooled admission *)
  let results : (int, response) Hashtbl.t =
    Hashtbl.create (max 16 (List.length backlog))
  in
  let pooled_run = ref [] in
  (* (rq, key, spec) in admission order *)
  List.iter
    (fun ((rq : Serve.request), key, v) ->
      t.clock <- t.clock + 1;
      let spec = spec_of key in
      let admit =
        match t.pol.breaker with
        | None -> `Run
        | Some cfg -> (
          let c = circuit t spec in
          match c.cstate with
          | Closed -> `Run
          | Half_open -> `Refuse  (* a probe is already in flight *)
          | Open until ->
            if t.clock >= until then begin
              (* half-open: this request is the probe *)
              c.cstate <- Half_open;
              match Resilience.Fault.hit ?plan "breaker-probe" with
              | () -> `Run
              | exception
                  (Resilience.Fault.Injected
                     { kind = Resilience.Fault.Crash; _ } as e)
                when t.pol.lethal_crash ->
                raise e
              | exception Resilience.Fault.Injected
                  { site; kind; occurrence } ->
                (* the probe itself faulted: the circuit stays open *)
                c.cstate <- Open (t.clock + cfg.cooldown);
                t.breaker_opens <- t.breaker_opens + 1;
                let outcome =
                  if kind = Resilience.Fault.Crash then Crashed else Faulted
                in
                `Probe_fault (outcome, fault_message site kind occurrence)
            end
            else `Refuse)
      in
      match admit with
      | `Run -> pooled_run := (rq, key, v, spec) :: !pooled_run
      | `Probe_fault (outcome, msg) ->
        Hashtbl.replace results rq.Serve.rq_id
          (refusal ~t0 ~lane:Serve.Pooled ~outcome ~fault:true msg rq)
      | `Refuse ->
        t.breaker_fastfails <- t.breaker_fastfails + 1;
        Hashtbl.replace results rq.Serve.rq_id
          (refusal ~t0 ~lane:Serve.Pooled ~outcome:Shed ~fault:false
             (Printf.sprintf "circuit open for %s" spec)
             rq))
    backlog;
  let pooled_run = List.rev !pooled_run in
  let depth = List.length pooled_run in
  if depth > t.max_depth then t.max_depth <- depth;
  (* shedding: over the high-watermark, refuse the cheapest-to-refuse
     first — Keep verdicts (no cost bound at all) before Guard (whose
     runtime check may still prune), later arrivals before earlier *)
  let to_run =
    match t.pol.shed_watermark with
    | Some w when depth > w ->
      let excess = depth - w in
      let indexed = List.mapi (fun i item -> (i, item)) pooled_run in
      let order_of = function
        | Costan.Analyze.Keep -> 0
        | Costan.Analyze.Guard _ -> 1
        | Costan.Analyze.Small -> 2  (* never queued *)
      in
      let victims =
        List.sort
          (fun (i, (_, _, v1, _)) (j, (_, _, v2, _)) ->
            match compare (order_of v1) (order_of v2) with
            | 0 -> compare j i  (* later arrival first *)
            | c -> c)
          indexed
        |> List.filteri (fun k _ -> k < excess)
        |> List.map fst
      in
      List.filteri
        (fun i ((rq : Serve.request), _, _, _) ->
          if List.mem i victims then begin
            Hashtbl.replace results rq.Serve.rq_id
              (refusal ~t0 ~lane:Serve.Pooled ~outcome:Shed ~fault:false
                 (Printf.sprintf "shed: backlog %d over watermark %d" depth w)
                 rq);
            false
          end
          else true)
        pooled_run
    | _ -> pooled_run
  in
  (* waves, crash-contained *)
  let cfg = Serve.config_of t.server in
  let arr = Array.of_list (List.map (fun (rq, key, _, _) -> (rq, key)) to_run) in
  let specs = Array.of_list (List.map (fun (_, _, _, s) -> s) to_run) in
  let total = Array.length arr in
  let pos = ref 0 in
  let executed = ref [] in
  (* (spec, response), request order *)
  while !pos < total do
    let wave = min cfg.Serve.max_queue (total - !pos) in
    let slice = Array.sub arr !pos wave in
    t.waves <- t.waves + 1;
    let out = run_wave t ~t0 slice in
    Array.iteri
      (fun i r ->
        Hashtbl.replace results r.sv.Serve.rs_id r;
        executed := (specs.(!pos + i), r) :: !executed)
      out;
    pos := !pos + wave
  done;
  (* feed pooled outcomes to the breaker, in request order *)
  (match t.pol.breaker with
  | None -> ()
  | Some cfg ->
    List.iter
      (fun (spec, r) ->
        match r.sv_outcome with
        | Ok | Retried _ -> record_outcome t cfg spec ~fail:false
        | Timeout | Crashed | Faulted -> record_outcome t cfg spec ~fail:true
        | Shed -> ())
      (List.rev !executed));
  let responses =
    List.map
      (function
        | `Done r -> r
        | `Queued id -> (
          match Hashtbl.find_opt results id with
          | Some r -> r
          | None -> assert false))
      admitted
  in
  (* accounting, accepting thread only *)
  List.iter
    (fun r ->
      t.served <- t.served + 1;
      (match r.sv.Serve.rs_lane with
      | Serve.Hit -> t.hits <- t.hits + 1
      | Serve.Inline -> t.inline_ <- t.inline_ + 1
      | Serve.Pooled -> t.pooled <- t.pooled + 1);
      (match r.sv_outcome with
      | Ok -> t.ok <- t.ok + 1
      | Retried _ ->
        t.ok <- t.ok + 1;
        t.retried <- t.retried + 1
      | Timeout -> t.timeouts <- t.timeouts + 1
      | Shed -> t.shed <- t.shed + 1
      | Crashed -> t.crashed <- t.crashed + 1
      | Faulted -> t.faulted <- t.faulted + 1);
      (match (r.sv_outcome, r.sv.Serve.rs_error, r.sv.Serve.rs_fault) with
      | (Ok | Retried _), Some _, false -> t.errors <- t.errors + 1
      | _ -> ());
      Metrics.add t.lat r.sv.Serve.rs_latency_s;
      if r.sv.Serve.rs_lane <> Serve.Hit && r.sv.Serve.rs_error = None then
        Metrics.add t.svc r.sv.Serve.rs_service_s)
    responses;
  responses

(* ------------------------------------------------------------------ *)
(* Stats. *)

type stats = {
  served : int;
  ok : int;
  retried : int;
  timeouts : int;
  shed : int;
  crashed : int;
  faulted : int;
  errors : int;
  hits : int;
  inline_ : int;
  pooled : int;
  waves : int;
  max_depth : int;
  breaker_opens : int;
  breaker_fastfails : int;
  pool_respawns : int;
}

let stats (t : t) : stats =
  {
    served = t.served;
    ok = t.ok;
    retried = t.retried;
    timeouts = t.timeouts;
    shed = t.shed;
    crashed = t.crashed;
    faulted = t.faulted;
    errors = t.errors;
    hits = t.hits;
    inline_ = t.inline_;
    pooled = t.pooled;
    waves = t.waves;
    max_depth = t.max_depth;
    breaker_opens = t.breaker_opens;
    breaker_fastfails = t.breaker_fastfails;
    pool_respawns = t.pool_respawns;
  }

let availability (s : stats) =
  if s.served = 0 then 1.0 else float_of_int s.ok /. float_of_int s.served

let latencies t = t.lat
let services t = t.svc
