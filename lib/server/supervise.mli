(** The supervisor: availability discipline around {!Serve}'s lanes.

    {!Serve.serve} answers a batch correctly or dies trying; this
    layer makes the dying bounded.  It drives the same memo-hit /
    inline / pooled lanes through {!Serve}'s exposed primitives, under
    a {!policy}:

    {ul
    {- {e crash containment} — an injected (or real) worker crash
       poisons only its own request, which comes back [Crashed]; the
       pool is respawned for the remainder of the wave.  With
       [lethal_crash] the old contract holds: the crash re-raises and
       the caller maps it to exit 70;}
    {- {e deadlines and retries} — each execution runs under
       {!Engine.Job}'s watchdog ([deadline_s] per attempt, [retries]
       extra attempts with deterministic exponential backoff), so a
       transient fault heals into [Retried n] and a stall becomes a
       typed [Timeout] instead of a wedged pool;}
    {- {e circuit breaking} — per-predicate closed/open/half-open
       circuits on a deterministic clock (pooled admissions, not wall
       time): a predicate whose recent pooled runs keep failing is
       fast-failed for [cooldown] admissions, then probed through the
       ["breaker-probe"] fault site;}
    {- {e load shedding} — a pooled backlog over [shed_watermark] is
       refused cheapest-to-refuse first: [Keep] verdicts (statically
       unbounded cost) before [Guard], later arrivals first.  Memo
       hits and Small-inline work are never shed.}}

    All supervision state lives on the accepting thread; worker
    domains share nothing but the memo table. *)

type outcome =
  | Ok  (** answered on the first attempt (includes run errors) *)
  | Retried of int  (** answered after this many extra attempts *)
  | Timeout  (** every attempt exceeded the deadline *)
  | Shed  (** refused: backlog over watermark, or circuit open *)
  | Crashed  (** a worker crash was contained to this request *)
  | Faulted  (** injected fault persisted through all attempts *)

val outcome_name : outcome -> string
val available : outcome -> bool
(** [Ok] and [Retried] count toward availability; everything else
    against it. *)

type response = {
  sv : Serve.response;
  sv_outcome : outcome;
  sv_attempts : int;  (** 0 when nothing ran (hit, shed, refusal) *)
}

type breaker_cfg = {
  window : int;  (** recent pooled outcomes kept per predicate *)
  trip_ratio : float;  (** failure fraction that opens the circuit *)
  min_samples : int;  (** don't trip on fewer outcomes than this *)
  cooldown : int;  (** admissions an open circuit waits before probing *)
}

val breaker_default : breaker_cfg
(** window 8, trip 0.5, min 4, cooldown 64. *)

val breaker_of_spec : string -> (breaker_cfg, string) result
(** Parse a CLI spec: ["on"]/["default"]/[""] for {!breaker_default},
    or comma-separated [window=N,trip=R,min=N,cooldown=N]. *)

type policy = {
  deadline_s : float option;  (** per-attempt deadline; [None] = none *)
  retries : int;  (** extra attempts for transient faults *)
  breaker : breaker_cfg option;
  shed_watermark : int option;  (** max pooled backlog; [None] = no shed *)
  lethal_crash : bool;  (** compat: a planned [Crash] aborts the run *)
}

val default_policy : policy
(** Everything off: no deadline, no retries, no breaker, no shedding,
    crashes contained. *)

val policy :
  ?deadline_s:float -> ?retries:int -> ?breaker:breaker_cfg ->
  ?shed_watermark:int -> ?lethal_crash:bool -> unit -> policy
(** @raise Invalid_argument on a non-positive deadline or watermark,
    or negative retries. *)

type t

val create : ?policy:policy -> Serve.t -> t
(** Wrap a server.  The server's own counters keep counting; the
    supervisor's {!stats} are the authoritative view of supervised
    traffic. *)

val server : t -> Serve.t
val policy_of : t -> policy

val serve : t -> Serve.request list -> response list
(** Serve one batch; responses in request order.  Raises only when
    [lethal_crash] is set and a planned [Crash] fires. *)

type stats = {
  served : int;
  ok : int;  (** available responses (includes retried) *)
  retried : int;  (** requests that healed after >= 1 retry *)
  timeouts : int;
  shed : int;  (** watermark sheds + breaker fast-fails *)
  crashed : int;
  faulted : int;
  errors : int;  (** well-formed run errors (available, not faults) *)
  hits : int;
  inline_ : int;
  pooled : int;
  waves : int;
  max_depth : int;  (** deepest pooled backlog after breaker, pre-shed *)
  breaker_opens : int;
  breaker_fastfails : int;
  pool_respawns : int;  (** extra pools spawned after a poisoned wave *)
}

val stats : t -> stats

val availability : stats -> float
(** ok / served; 1.0 when idle. *)

val latencies : t -> Metrics.t
val services : t -> Metrics.t
