(** Latency accounting: a growable sample buffer with percentile
    readout.  Single-writer — the server records samples from the
    accepting thread only, after each batch completes. *)

type t

val create : unit -> t
val add : t -> float -> unit

val of_samples : float list -> t
(** A buffer pre-loaded with the given samples, in order. *)

val count : t -> int
val mean : t -> float
(** 0 when empty. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0, 100], by nearest-rank on the
    sorted samples; 0 when empty. *)

type summary = {
  n : int;
  mean_s : float;
  p50_s : float;
  p95_s : float;
  p99_s : float;
  max_s : float;
}

val summary : t -> summary

val mean_and_cs2 : t -> float * float
(** Mean and squared coefficient of variation (variance / mean²) of
    the samples — the shape the M/G/1 model wants.  (0, 0) when
    empty. *)
