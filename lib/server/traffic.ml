(* Deterministic zipfian traffic over a ranked pool of distinct query
   instances.  (mix, seed) fully determines the pool and the request
   sequence; instance parameters are sized well below the paper-scale
   benchmark inputs so a traffic run is thousands of cheap queries,
   not four heavy ones. *)

type mix = (string * int) list

let default_distinct = 16

let parse_mix spec =
  let items = String.split_on_char ',' spec in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | item :: rest -> (
      let item = String.trim item in
      if item = "" then go acc rest
      else
        let name, count =
          match String.index_opt item ':' with
          | None -> (item, Ok default_distinct)
          | Some i ->
            let n = String.sub item (i + 1) (String.length item - i - 1) in
            ( String.sub item 0 i,
              match int_of_string_opt n with
              | Some c when c >= 1 -> Ok c
              | Some _ | None ->
                Error (Printf.sprintf "bad count %S in mix item %S" n item) )
        in
        match count with
        | Error _ as e -> e
        | Ok count ->
          if List.mem name Benchlib.Programs.all_names then
            go ((name, count) :: acc) rest
          else
            Error
              (Printf.sprintf "unknown benchmark %S (expected %s)" name
                 (String.concat "|" Benchlib.Programs.all_names)))
  in
  match go [] items with
  | Ok [] -> Error "empty mix"
  | other -> other

let mix_to_string mix =
  String.concat ","
    (List.map (fun (name, count) -> Printf.sprintf "%s:%d" name count) mix)

let source_of = function
  | "deriv" -> Benchlib.Programs.deriv
  | "tak" -> Benchlib.Programs.tak
  | "qsort" -> Benchlib.Programs.qsort
  | "matrix" -> Benchlib.Programs.matrix
  | name -> invalid_arg (Printf.sprintf "Traffic.database: unknown %S" name)

let database mix =
  let seen = Hashtbl.create 4 in
  String.concat "\n"
    (List.filter_map
       (fun (name, _) ->
         if Hashtbl.mem seen name then None
         else begin
           Hashtbl.add seen name ();
           Some (source_of name)
         end)
       mix)

(* One distinct instance of a benchmark query, derived from (seed,
   rank).  The parameter spaces are wide enough that ranks below ~50
   per benchmark are genuinely distinct queries. *)
let instance ~seed name rank =
  match name with
  | "deriv" ->
    Benchlib.Inputs.deriv_query ~depth:(3 + (rank mod 3)) ~iterations:1
      ~seed:((seed * 31) + rank + 1) ()
  | "tak" ->
    Benchlib.Inputs.tak_query ~x:(6 + (rank mod 4))
      ~y:(3 + (rank / 4 mod 3))
      ~z:(2 + (rank / 12 mod 2))
      ()
  | "qsort" ->
    Benchlib.Inputs.qsort_query
      ~n:(8 + (2 * (rank mod 12)))
      ~seed:((seed * 17) + rank + 1) ()
  | "matrix" ->
    Benchlib.Inputs.matrix_query
      ~n:(2 + (rank mod 3))
      ~seed:((seed * 13) + rank + 1) ()
  | name -> invalid_arg (Printf.sprintf "Traffic.instance: unknown %S" name)

(* Round-robin interleave so every popularity band mixes programs. *)
let pool mix ~seed =
  let streams =
    List.map (fun (name, count) -> (name, count, ref 0)) mix
  in
  let out = ref [] in
  let progressed = ref true in
  while !progressed do
    progressed := false;
    List.iter
      (fun (name, count, next) ->
        if !next < count then begin
          out := instance ~seed name !next :: !out;
          incr next;
          progressed := true
        end)
      streams
  done;
  Array.of_list (List.rev !out)

let requests mix ~seed ~s ~n =
  let pool = pool mix ~seed in
  let draw = Stats.Freq.zipf ~s ~n:(Array.length pool) ~seed in
  Array.init n (fun i ->
      { Serve.rq_id = i; rq_query = pool.(draw ()) })
