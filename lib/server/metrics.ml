(* Latency samples with percentile readout. *)

type t = { mutable samples : float array; mutable n : int }

let create () = { samples = Array.make 1024 0.0; n = 0 }

let add t x =
  if t.n = Array.length t.samples then begin
    let bigger = Array.make (2 * t.n) 0.0 in
    Array.blit t.samples 0 bigger 0 t.n;
    t.samples <- bigger
  end;
  t.samples.(t.n) <- x;
  t.n <- t.n + 1

let of_samples xs =
  let t = create () in
  List.iter (add t) xs;
  t

let count t = t.n

let mean t =
  if t.n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    for i = 0 to t.n - 1 do
      acc := !acc +. t.samples.(i)
    done;
    !acc /. float_of_int t.n
  end

let percentile t p =
  if t.n = 0 then 0.0
  else begin
    let a = Array.sub t.samples 0 t.n in
    Array.sort compare a;
    let rank =
      int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) - 1
    in
    a.(max 0 (min (t.n - 1) rank))
  end

type summary = {
  n : int;
  mean_s : float;
  p50_s : float;
  p95_s : float;
  p99_s : float;
  max_s : float;
}

let summary (t : t) =
  {
    n = t.n;
    mean_s = mean t;
    p50_s = percentile t 50.0;
    p95_s = percentile t 95.0;
    p99_s = percentile t 99.0;
    max_s = percentile t 100.0;
  }

let mean_and_cs2 (t : t) =
  if t.n = 0 then (0.0, 0.0)
  else begin
    let m = mean t in
    let acc = ref 0.0 in
    for i = 0 to t.n - 1 do
      let d = t.samples.(i) -. m in
      acc := !acc +. (d *. d)
    done;
    let var = !acc /. float_of_int t.n in
    if m = 0.0 then (0.0, 0.0) else (m, var /. (m *. m))
  end
