(* The concurrent query server: memo consult + costan admission on the
   accepting thread, a domain pool for everything expensive. *)

type config = {
  src : string;
  pes : int;
  workers : int;
  memo : Memo.Table.t option;
  threshold : int;
  max_queue : int;
  max_solutions : int;
  faults : Resilience.Fault.plan option;
}

let config ?(pes = 1) ?(workers = Engine.Pool.default_jobs ())
    ?memo ?(threshold = 150) ?(max_queue = 256) ?(max_solutions = 1) ?faults
    ~src () =
  if pes < 1 then invalid_arg "Serve.config: pes must be >= 1";
  if workers < 1 then invalid_arg "Serve.config: workers must be >= 1";
  if threshold < 1 then invalid_arg "Serve.config: threshold must be >= 1";
  if max_queue < 1 then invalid_arg "Serve.config: max_queue must be >= 1";
  if max_solutions < 1 then
    invalid_arg "Serve.config: max_solutions must be >= 1";
  { src; pes; workers; memo; threshold; max_queue; max_solutions; faults }

type t = {
  cfg : config;
  an : Costan.Analyze.t;
  db : Prolog.Database.t;  (* parsed once; read-only after analysis *)
  served : int Atomic.t;
  hits_ : int Atomic.t;
  inline_ : int Atomic.t;
  pooled_ : int Atomic.t;
  waves_ : int Atomic.t;
  max_depth_ : int Atomic.t;
  faulted_ : int Atomic.t;
  errors_ : int Atomic.t;
  lat : Metrics.t;
  svc : Metrics.t;
}

let create cfg =
  let db = Prolog.Database.of_string cfg.src in
  {
    cfg;
    an = Costan.Analyze.analyze db;
    db;
    served = Atomic.make 0;
    hits_ = Atomic.make 0;
    inline_ = Atomic.make 0;
    pooled_ = Atomic.make 0;
    waves_ = Atomic.make 0;
    max_depth_ = Atomic.make 0;
    faulted_ = Atomic.make 0;
    errors_ = Atomic.make 0;
    lat = Metrics.create ();
    svc = Metrics.create ();
  }

let config_of t = t.cfg

type request = { rq_id : int; rq_query : string }
type lane = Hit | Inline | Pooled

type response = {
  rs_id : int;
  rs_query : string;
  rs_answers : Memo.Canon.answer list;
  rs_lane : lane;
  rs_error : string option;
  rs_fault : bool;
  rs_latency_s : float;
  rs_service_s : float;
  rs_inferences : int;
}

(* ------------------------------------------------------------------ *)
(* Execution: one query straight through the chosen engine.  Compiles
   fresh every time (the machines are single-shot), so this is safe on
   any domain. *)

exception Run_error of string

let run_answers t query =
  if t.cfg.pes <= 1 then begin
    let solutions, m =
      Wam.Seq.solve_all ~max_solutions:t.cfg.max_solutions ~src:t.cfg.src
        ~query ()
    in
    (solutions, m.Wam.Machine.inferences)
  end
  else begin
    let result, sim =
      Rapwam.Sim.solve ~n_workers:t.cfg.pes ~src:t.cfg.src ~query ()
    in
    match result with
    | Wam.Seq.Success bindings ->
      ([ bindings ], sim.Rapwam.Sim.m.Wam.Machine.inferences)
    | Wam.Seq.Failure -> ([], sim.Rapwam.Sim.m.Wam.Machine.inferences)
  end

let execute ?faults t query =
  try
    (match faults with
    | Some plan -> Resilience.Fault.hit ~plan "sim-step"
    | None -> ());
    let answers, inferences = run_answers t query in
    Ok (answers, inferences)
  with
  | Resilience.Fault.Injected { kind = Resilience.Fault.Crash; _ } as e ->
    raise e
  | Resilience.Fault.Injected { site; kind; occurrence } ->
    Error
      (`Fault,
       Printf.sprintf "injected %s at %s#%d"
         (Resilience.Fault.kind_name kind) site occurrence)
  | Prolog.Parser.Error (msg, pos) ->
    Error (`Run, Printf.sprintf "syntax error at %d: %s" pos msg)
  | Prolog.Database.Load_error msg ->
    Error (`Run, Printf.sprintf "load error: %s" msg)
  | Prolog.Cge.Ill_formed msg -> Error (`Run, Printf.sprintf "bad CGE: %s" msg)
  | Wam.Compile.Error msg -> Error (`Run, Printf.sprintf "compile error: %s" msg)
  | Wam.Machine.Runtime_error msg -> Error (`Run, msg)
  | Run_error msg -> Error (`Run, msg)

let run_direct t query =
  match execute t query with
  | Ok (answers, _) -> answers
  | Error (_, msg) -> raise (Run_error msg)

(* ------------------------------------------------------------------ *)
(* Serving. *)

let now () = Unix.gettimeofday ()

(* A memo hit as a finished response; [None] when the table has no
   answer (or memoing is off) and the query must actually run. *)
let lookup_hit t ~t0 ~key (rq : request) : response option =
  match (t.cfg.memo, key) with
  | Some memo, Some k -> (
    match Memo.Table.find memo k with
    | Some answers ->
      Atomic.incr t.hits_;
      let fin = now () in
      Some
        {
          rs_id = rq.rq_id;
          rs_query = rq.rq_query;
          rs_answers = answers;
          rs_lane = Hit;
          rs_error = None;
          rs_fault = false;
          rs_latency_s = fin -. t0;
          rs_service_s = 0.0;
          rs_inferences = 0;
        }
    | None -> None)
  | _ -> None

(* Compute a miss on whatever domain this runs on, publish the answer
   set, and time the work.  [recheck] is the pooled lane's
   double-checked lookup: by the time a queued request reaches a
   worker, an earlier request for the same key may have published —
   consulting the table again turns the duplicate into a hit instead
   of a redundant run. *)
let rec compute ?(recheck = false) t ~t0 ~key (rq : request) : response =
  match if recheck then lookup_hit t ~t0 ~key rq else None with
  | Some rs -> rs
  | None -> compute_miss t ~t0 ~key rq

and compute_miss t ~t0 ~key (rq : request) : response =
  let start = now () in
  match execute ?faults:t.cfg.faults t rq.rq_query with
  | Ok (answers, inferences) ->
    (match (t.cfg.memo, key) with
    | Some memo, Some key -> ignore (Memo.Table.insert memo key answers)
    | _ -> ());
    let fin = now () in
    {
      rs_id = rq.rq_id;
      rs_query = rq.rq_query;
      rs_answers = answers;
      rs_lane = Inline;
      rs_error = None;
      rs_fault = false;
      rs_latency_s = fin -. t0;
      rs_service_s = fin -. start;
      rs_inferences = inferences;
    }
  | Error (cls, msg) ->
    (match cls with
    | `Fault -> Atomic.incr t.faulted_
    | `Run -> Atomic.incr t.errors_);
    let fin = now () in
    {
      rs_id = rq.rq_id;
      rs_query = rq.rq_query;
      rs_answers = [];
      rs_lane = Inline;
      rs_error = Some msg;
      rs_fault = (cls = `Fault);
      rs_latency_s = fin -. t0;
      rs_service_s = fin -. start;
      rs_inferences = 0;
    }

let verdict t goal_text =
  match Prolog.Parser.term_of_string goal_text with
  | exception Prolog.Parser.Error _ -> Costan.Analyze.Keep
  | goal -> Costan.Analyze.verdict t.an ~threshold:t.cfg.threshold goal

let serve t (requests : request list) : response list =
  let t0 = now () in
  let queued = ref [] in
  (* admission pass, newest decisions first in [queued] *)
  let admitted =
    List.map
      (fun rq ->
        (* the chaos site: every admission passes it *)
        Resilience.Fault.hit ?plan:t.cfg.faults "cell-start";
        let key =
          match Memo.Canon.key_of_query rq.rq_query with
          | Ok key -> Some key
          | Error _ -> None
        in
        match lookup_hit t ~t0 ~key rq with
        | Some rs -> `Done rs
        | None -> (
          match verdict t rq.rq_query with
          | Costan.Analyze.Small ->
            Atomic.incr t.inline_;
            `Done (compute t ~t0 ~key rq)
          | Costan.Analyze.Keep | Costan.Analyze.Guard _ ->
            Atomic.incr t.pooled_;
            queued := (rq, key) :: !queued;
            `Queued rq.rq_id))
      requests
  in
  (* the queued lane drains in waves of [max_queue]: backpressure is a
     deeper backlog waiting for the wave in flight *)
  let backlog = Array.of_list (List.rev !queued) in
  let depth = Array.length backlog in
  if depth > Atomic.get t.max_depth_ then Atomic.set t.max_depth_ depth;
  let results : (int, response) Hashtbl.t = Hashtbl.create (max 16 depth) in
  let pos = ref 0 in
  while !pos < depth do
    let wave = min t.cfg.max_queue (depth - !pos) in
    let slice = Array.sub backlog !pos wave in
    pos := !pos + wave;
    Atomic.incr t.waves_;
    let out =
      Engine.Pool.map ~jobs:t.cfg.workers
        (fun (rq, key) ->
          let rs = compute ~recheck:true t ~t0 ~key rq in
          if rs.rs_lane = Hit then begin
            (* second-chance hit: it left the pooled lane after all *)
            Atomic.decr t.pooled_;
            rs
          end
          else { rs with rs_lane = Pooled })
        slice
    in
    Array.iter (fun rs -> Hashtbl.replace results rs.rs_id rs) out
  done;
  let responses =
    List.map
      (function
        | `Done rs -> rs
        | `Queued id -> (
          match Hashtbl.find_opt results id with
          | Some rs -> rs
          | None -> assert false))
      admitted
  in
  (* accounting happens on the accepting thread only *)
  List.iter
    (fun rs ->
      Atomic.incr t.served;
      Metrics.add t.lat rs.rs_latency_s;
      if rs.rs_lane <> Hit && rs.rs_error = None then
        Metrics.add t.svc rs.rs_service_s)
    responses;
  responses

type stats = {
  served : int;
  hits : int;
  inline_ : int;
  pooled : int;
  waves : int;
  max_depth : int;
  faulted : int;
  errors : int;
}

let stats (t : t) : stats =
  {
    served = Atomic.get t.served;
    hits = Atomic.get t.hits_;
    inline_ = Atomic.get t.inline_;
    pooled = Atomic.get t.pooled_;
    waves = Atomic.get t.waves_;
    max_depth = Atomic.get t.max_depth_;
    faulted = Atomic.get t.faulted_;
    errors = Atomic.get t.errors_;
  }

let latencies t = t.lat
let services t = t.svc
let memo_totals t = Option.map Memo.Table.totals t.cfg.memo
