(** Deterministic zipfian traffic: a ranked pool of distinct query
    instances over the loaded benchmark programs, sampled with
    {!Stats.Freq.zipf} so a few queries dominate (the skewed mix a
    shared answer table is built for).

    A mix is a list of [(benchmark, distinct)] pairs; the pool
    interleaves the benchmarks' instances round-robin so every
    popularity band contains every program.  Instance parameters are
    derived from the seed and the rank, so (mix, seed) fully
    determines both the pool and the request sequence. *)

type mix = (string * int) list
(** Benchmark name (see {!Benchlib.Programs.all_names}) and number of
    distinct query instances to generate for it. *)

val parse_mix : string -> (mix, string) result
(** Parse a CLI spec: comma-separated [NAME] or [NAME:COUNT] items
    (count defaults to 16).  Unknown names and non-positive counts are
    errors. *)

val mix_to_string : mix -> string

val database : mix -> string
(** Concatenated sources of the mix's (distinct) benchmark programs —
    what the server loads. *)

val pool : mix -> seed:int -> string array
(** The ranked pool of distinct query strings, rank 0 first. *)

val requests : mix -> seed:int -> s:float -> n:int -> Serve.request array
(** [n] requests zipf-sampled from the pool with skew [s]. *)
