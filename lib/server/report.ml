(* BENCH_server.json writer + text summary.  Hand-rolled JSON, like
   the bench harness's other writers; floats are printed with enough
   digits to round-trip. *)

open Harness

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fl x =
  if Float.is_finite x then Printf.sprintf "%.6g" x
  else Printf.sprintf "%S" (Float.to_string x)

let add_latency buf (s : Metrics.summary) =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"n\": %d, \"mean_s\": %s, \"p50_s\": %s, \"p95_s\": %s, \
        \"p99_s\": %s, \"max_s\": %s}"
       s.Metrics.n (fl s.Metrics.mean_s) (fl s.Metrics.p50_s)
       (fl s.Metrics.p95_s) (fl s.Metrics.p99_s) (fl s.Metrics.max_s))

let add_phase buf (ph : phase) =
  let st = ph.ph_stats in
  let sv = ph.ph_sup in
  Buffer.add_string buf
    (Printf.sprintf
       "    {\"phase\": %S, \"requests\": %d, \"wall_s\": %s, \
        \"throughput_qps\": %s, \"hit_rate\": %s, \"latency\": "
       ph.ph_name ph.ph_requests (fl ph.ph_wall_s) (fl ph.ph_qps)
       (fl ph.ph_hit_rate));
  add_latency buf ph.ph_latency;
  Buffer.add_string buf ", \"service\": ";
  add_latency buf ph.ph_service;
  Buffer.add_string buf
    (Printf.sprintf
       ", \"lanes\": {\"hits\": %d, \"inline\": %d, \"pooled\": %d}, \
        \"waves\": %d, \"max_queue_depth\": %d, \"faulted\": %d, \
        \"errors\": %d, \"availability\": %s, \"outcomes\": {\"ok\": %d, \
        \"retried\": %d, \"timeout\": %d, \"shed\": %d, \"crashed\": %d, \
        \"faulted\": %d}, \"breaker\": {\"opens\": %d, \"fastfails\": %d}, \
        \"pool_respawns\": %d}"
       st.Serve.hits st.Serve.inline_ st.Serve.pooled st.Serve.waves
       st.Serve.max_depth st.Serve.faulted st.Serve.errors
       (fl ph.ph_availability) sv.Supervise.ok sv.Supervise.retried
       sv.Supervise.timeouts sv.Supervise.shed sv.Supervise.crashed
       sv.Supervise.faulted sv.Supervise.breaker_opens
       sv.Supervise.breaker_fastfails sv.Supervise.pool_respawns)

let to_json_string (o : outcome) =
  let p = o.o_params in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"rapwam-server/1\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"params\": {\"mix\": %S, \"seed\": %d, \"zipf_s\": %s, \
        \"requests\": %d, \"batch\": %d, \"pes\": %d, \"workers\": %d, \
        \"memo_words\": %d, \"memo_shards\": %d, \"threshold\": %d, \
        \"max_queue\": %d, \"max_solutions\": %d, \"faults\": %S},\n"
       (Traffic.mix_to_string p.mix) p.seed (fl p.zipf_s) p.requests p.batch
       p.pes p.workers p.memo_words p.memo_shards p.threshold p.max_queue
       p.max_solutions
       (match p.faults with
       | None -> ""
       | Some plan -> Resilience.Fault.to_string plan));
  Buffer.add_string buf
    (Printf.sprintf "  \"pool_size\": %d,\n" o.o_pool_size);
  Buffer.add_string buf "  \"phases\": [\n";
  List.iteri
    (fun i ph ->
      add_phase buf ph;
      Buffer.add_string buf (if i = 2 then "\n" else ",\n"))
    [ o.o_off; o.o_cold; o.o_warm ];
  Buffer.add_string buf "  ],\n";
  let m = o.o_memo in
  Buffer.add_string buf
    (Printf.sprintf
       "  \"memo\": {\"hits\": %d, \"misses\": %d, \"inserts\": %d, \
        \"duplicates\": %d, \"evictions\": %d, \"entries\": %d, \
        \"words\": %d, \"hit_rate\": %s},\n"
       m.Memo.Table.hits m.Memo.Table.misses m.Memo.Table.inserts
       m.Memo.Table.duplicates m.Memo.Table.evictions m.Memo.Table.entries
       m.Memo.Table.words
       (fl (Memo.Table.hit_rate m)));
  let q = o.o_mg1 in
  Buffer.add_string buf
    (Printf.sprintf
       "  \"mg1\": {\"lambda_per_worker\": %s, \"service_s\": %s, \
        \"cs2\": %s, \"capped_for_stability\": %b, \"predicted_mean_s\": \
        %s, \"measured_mean_s\": %s, \"predicted_over_measured\": %s},\n"
       (fl q.q_lambda) (fl q.q_service_s) (fl q.q_cs2) q.q_capped
       (fl q.q_predicted_s) (fl q.q_measured_s) (fl q.q_ratio));
  Buffer.add_string buf
    (Printf.sprintf "  \"answers_checked\": %d,\n" o.o_answers_checked);
  (match o.o_mismatches with
  | [] -> ()
  | ms ->
    Buffer.add_string buf "  \"mismatches\": [\n";
    List.iteri
      (fun i (query, served, want) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"query\": \"%s\", \"served\": \"%s\", \"direct\": \
              \"%s\"}%s\n"
             (json_escape query) (json_escape served) (json_escape want)
             (if i = List.length ms - 1 then "" else ",")))
      ms;
    Buffer.add_string buf "  ],\n");
  Buffer.add_string buf
    (Printf.sprintf "  \"answers_equal\": %b,\n" o.o_answers_equal);
  Buffer.add_string buf
    (Printf.sprintf "  \"hit_rate_ok\": %b,\n" (hit_rate_ok o));
  Buffer.add_string buf
    (Printf.sprintf "  \"warm_speedup_ok\": %b,\n" (warm_speedup_ok o));
  Buffer.add_string buf
    (Printf.sprintf "  \"p99_finite\": %b,\n" (p99_finite o));
  Buffer.add_string buf
    (Printf.sprintf "  \"mg1_ratio_ok\": %b\n" (mg1_ratio_ok o));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_json path o =
  Resilience.Atomic_io.write_string path (to_json_string o)

(* ---------------------------------------------------------------- *)
(* BENCH_chaos.json: the availability experiment.  Same grep-friendly
   shape — the gates CI watches are pre-evaluated booleans. *)

let add_policy buf (pol : Supervise.policy) =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"deadline_s\": %s, \"retries\": %d, \"breaker\": %s, \
        \"shed_watermark\": %s, \"lethal_crash\": %b}"
       (match pol.Supervise.deadline_s with Some d -> fl d | None -> "null")
       pol.Supervise.retries
       (match pol.Supervise.breaker with
       | None -> "null"
       | Some b ->
         Printf.sprintf
           "{\"window\": %d, \"trip_ratio\": %s, \"min_samples\": %d, \
            \"cooldown\": %d}"
           b.Supervise.window (fl b.Supervise.trip_ratio)
           b.Supervise.min_samples b.Supervise.cooldown)
       (match pol.Supervise.shed_watermark with
       | Some w -> string_of_int w
       | None -> "null")
       pol.Supervise.lethal_crash)

let chaos_to_json_string (c : chaos) =
  let p = c.c_params in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"rapwam-chaos/1\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"params\": {\"mix\": %S, \"seed\": %d, \"zipf_s\": %s, \
        \"requests\": %d, \"batch\": %d, \"pes\": %d, \"workers\": %d, \
        \"threshold\": %d, \"max_queue\": %d, \"faults\": %S, \"policy\": "
       (Traffic.mix_to_string p.mix) p.seed (fl p.zipf_s) p.requests p.batch
       p.pes p.workers p.threshold p.max_queue
       (match p.faults with
       | None -> ""
       | Some plan -> Resilience.Fault.to_string plan));
  add_policy buf p.policy;
  Buffer.add_string buf "},\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"pool_size\": %d,\n" c.c_pool_size);
  Buffer.add_string buf "  \"phases\": [\n";
  List.iteri
    (fun i ph ->
      add_phase buf ph;
      Buffer.add_string buf (if i = 2 then "\n" else ",\n"))
    [ c.c_chaos; c.c_warm; c.c_restart ];
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"snapshot\": {\"saved_entries\": %d, \"restored_entries\": %d, \
        \"skipped\": %d, \"torn\": %b},\n"
       c.c_snapshot_entries c.c_restore.Memo.Snapshot.entries
       c.c_restore.Memo.Snapshot.skipped c.c_restore.Memo.Snapshot.torn);
  Buffer.add_string buf
    (Printf.sprintf "  \"availability\": %s,\n"
       (fl c.c_chaos.ph_availability));
  Buffer.add_string buf
    (Printf.sprintf "  \"hit_rate_delta\": %s,\n" (fl c.c_hit_delta));
  Buffer.add_string buf
    (Printf.sprintf "  \"answers_checked\": %d,\n" c.c_answers_checked);
  (match c.c_mismatches with
  | [] -> ()
  | ms ->
    Buffer.add_string buf "  \"mismatches\": [\n";
    List.iteri
      (fun i (query, served, want) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"query\": \"%s\", \"served\": \"%s\", \"direct\": \
              \"%s\"}%s\n"
             (json_escape query) (json_escape served) (json_escape want)
             (if i = List.length ms - 1 then "" else ",")))
      ms;
    Buffer.add_string buf "  ],\n");
  Buffer.add_string buf
    (Printf.sprintf "  \"answers_equal\": %b,\n" c.c_answers_equal);
  Buffer.add_string buf
    (Printf.sprintf "  \"availability_ok\": %b,\n" (availability_ok c));
  Buffer.add_string buf
    (Printf.sprintf "  \"warm_restart_ok\": %b\n" (warm_restart_ok c));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_chaos_json path c =
  Resilience.Atomic_io.write_string path (chaos_to_json_string c)

let pp_chaos fmt (c : chaos) =
  let p = c.c_params in
  Format.fprintf fmt "mix %s, %d requests over %d distinct queries@."
    (Traffic.mix_to_string p.mix) p.requests c.c_pool_size;
  Format.fprintf fmt "%-9s %9s %10s %10s %7s %8s@." "phase" "q/s" "p50" "p99"
    "hit%" "avail";
  List.iter
    (fun ph ->
      let l = ph.ph_latency in
      Format.fprintf fmt "%-9s %9.0f %9.2fms %9.2fms %6.1f%% %8.3f@."
        ph.ph_name ph.ph_qps
        (l.Metrics.p50_s *. 1000.0)
        (l.Metrics.p99_s *. 1000.0)
        (100.0 *. ph.ph_hit_rate)
        ph.ph_availability)
    [ c.c_chaos; c.c_warm; c.c_restart ];
  let sv = c.c_chaos.ph_sup in
  Format.fprintf fmt
    "chaos outcomes: %d ok (%d retried), %d timeout, %d shed, %d crashed, \
     %d faulted; breaker %d opens, %d fast-fails; %d pool respawns@."
    sv.Supervise.ok sv.Supervise.retried sv.Supervise.timeouts
    sv.Supervise.shed sv.Supervise.crashed sv.Supervise.faulted
    sv.Supervise.breaker_opens sv.Supervise.breaker_fastfails
    sv.Supervise.pool_respawns;
  Format.fprintf fmt
    "snapshot: %d entries saved, %d restored (%d skipped); hit-rate delta \
     %.3f@."
    c.c_snapshot_entries c.c_restore.Memo.Snapshot.entries
    c.c_restore.Memo.Snapshot.skipped c.c_hit_delta;
  Format.fprintf fmt
    "answers: %d/%d checked, equal = %b; availability %.3f (>= 0.95: %b); \
     warm restart ok = %b@."
    c.c_answers_checked c.c_pool_size c.c_answers_equal
    c.c_chaos.ph_availability (availability_ok c) (warm_restart_ok c)

let pp fmt (o : outcome) =
  let p = o.o_params in
  Format.fprintf fmt "mix %s, %d requests over %d distinct queries@."
    (Traffic.mix_to_string p.mix) p.requests o.o_pool_size;
  Format.fprintf fmt "%-9s %9s %10s %10s %10s %10s %8s@." "phase" "q/s"
    "mean" "p50" "p95" "p99" "hit%";
  List.iter
    (fun ph ->
      let l = ph.ph_latency in
      Format.fprintf fmt "%-9s %9.0f %9.2fms %9.2fms %9.2fms %9.2fms %7.1f%%@."
        ph.ph_name ph.ph_qps
        (l.Metrics.mean_s *. 1000.0)
        (l.Metrics.p50_s *. 1000.0)
        (l.Metrics.p95_s *. 1000.0)
        (l.Metrics.p99_s *. 1000.0)
        (100.0 *. ph.ph_hit_rate))
    [ o.o_off; o.o_cold; o.o_warm ];
  let m = o.o_memo in
  Format.fprintf fmt
    "memo: %d entries, %d words, %d inserts, %d duplicates deduped, %d \
     evictions@."
    m.Memo.Table.entries m.Memo.Table.words m.Memo.Table.inserts
    m.Memo.Table.duplicates m.Memo.Table.evictions;
  Format.fprintf fmt
    "answers: %d/%d distinct queries checked, equal = %b@."
    o.o_answers_checked o.o_pool_size o.o_answers_equal;
  let q = o.o_mg1 in
  Format.fprintf fmt
    "M/G/1: predicted %.2f ms vs measured %.2f ms (ratio %.3f%s)@."
    (q.q_predicted_s *. 1000.0)
    (q.q_measured_s *. 1000.0)
    q.q_ratio
    (if q.q_capped then ", lambda capped at 95% utilization" else "")
