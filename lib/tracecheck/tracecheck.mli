(** Happens-before race detector and coherence-invariant sanitizer over
    tagged RAP-WAM memory traces.

    Replays a packed trace (memory accesses interleaved with the
    explicit synchronization events of {!Trace.Ref_record.sync}) once,
    maintaining a vector clock per PE plus a released clock per
    synchronization address, and checks five invariants:

    - ["race"]: no two PEs make conflicting accesses (at least one a
      write) to the same word unordered by happens-before;
    - ["tag-locality"]: on a synchronized cross-PE conflict, every
      access by a PE other than the word's owner carries a
      Global-locality area tag, so the paper's hybrid write-through
      protocol keeps it coherent;
    - ["read-before-write"]: no word is read before its first write
      (code fetches and boot-initialized goal/message control words
      excepted);
    - ["area-bounds"]: the area tag of every access agrees with the
      address's region in {!Wam.Layout};
    - ["stale-trail"]: the selective-unwind reset pattern (Trail read
      then same-PE write) only resets previously written words.

    Cost is one pass over the packed words with O(n_pes) shadow state
    per distinct address. *)

type violation = {
  rule : string;
  pe : int;  (** the PE whose access triggered the report *)
  other_pe : int;  (** the conflicting PE, or [-1] *)
  addr : int;
  area : Trace.Area.t option;
  message : string;
}

val pp_violation : Format.formatter -> violation -> unit

type summary = {
  violations : violation list;
      (** the first [max_violations] found, in trace order *)
  n_violations : int;  (** total found, deduplicated per rule and address *)
  accesses : int;
  syncs : int;
  distinct_addrs : int;
  n_pes : int;
}

(** {1 Streaming interface} *)

type t

val create : ?max_violations:int -> unit -> t
(** Fresh checker state.  [max_violations] (default 50) bounds the
    retained violation list; the total count is always exact. *)

val feed_word : t -> int -> unit
(** Feed one packed trace word (access or sync event). *)

val finish : t -> summary

(** {1 One-shot interface} *)

val check_buffer :
  ?max_violations:int -> Trace.Sink.Buffer_sink.t -> summary
(** Replay a complete trace buffer. *)

val ok : summary -> bool
(** No violations. *)

val pp_summary : Format.formatter -> summary -> unit

val json_of_summary : ?label:string -> summary -> string
(** One JSON object: counts plus the retained violations. *)

(** {1 Seeded-defect transforms}

    Each transform damages a clean packed trace in one way a correct
    implementation could get wrong (dropped synchronization edge,
    mis-tagged area, unlocked update, uninitialized read, stale trail
    entry); {!check_buffer} must flag the result with the defect's
    [rule].  Used by the defect fixtures in the test suite and the
    [tracecheck --defect] CLI. *)

module Defects : sig
  type defect = {
    name : string;
    rule : string;  (** the checker rule expected to fire *)
    description : string;
  }

  val all : defect list
  val names : string list
  val find : string -> defect option

  val apply : string -> Trace.Sink.Buffer_sink.t -> Trace.Sink.Buffer_sink.t
  (** [apply name buf] returns a damaged copy of [buf]; [buf] itself
      is untouched.  Raises [Invalid_argument] on an unknown name. *)
end
