(* Happens-before race detector and coherence-invariant sanitizer over
   tagged RAP-WAM memory traces.

   The emulator interleaves explicit synchronization events with the
   memory accesses (Trace.Ref_record.sync): lock Acquire/Release on the
   parcall-count, goal-stack and message lock words, Publish when a
   parcall/goal frame becomes visible, Steal when a goal frame changes
   hands, and Join when a parent observes a synchronized condition
   (counter or acks drained to zero).  This pass replays the stream
   once, maintaining one vector clock per PE plus a released-clock per
   synchronization address, and checks per word address:

     race               no two PEs make conflicting accesses (at least
                        one a write) unordered by happens-before
     tag-locality       a synchronized cross-PE conflict only touches
                        addresses whose remote accesses carry a
                        Global-locality area tag (Table 1): the hybrid
                        protocol writes those through, so remote
                        readers see them -- a Local tag here means a
                        stale-cache bug in a real machine
     read-before-write  no word is read before its first write
                        (instruction fetches and the boot-initialized
                        goal-stack/message control words excepted)
     area-bounds        the area tag of every access agrees with the
                        address's region in the memory layout
     stale-trail        the selective-unwind pattern (a Trail read
                        immediately followed by the reset write on the
                        same PE) only resets words that were actually
                        written, i.e. trail entries reference
                        previously written heap/stack words

   Cost: one pass over the packed words; O(n_pes) ints of shadow state
   per distinct address in the worst case (reads from a single PE stay
   in a compact epoch until a concurrent reader inflates them). *)

module R = Trace.Ref_record

type violation = {
  rule : string;
  pe : int;
  other_pe : int; (* the conflicting PE, or -1 *)
  addr : int;
  area : Trace.Area.t option;
  message : string;
}

let pp_violation fmt v =
  Format.fprintf fmt "%s: PE%d%s @%d%s: %s" v.rule v.pe
    (if v.other_pe >= 0 then Printf.sprintf " vs PE%d" v.other_pe else "")
    v.addr
    (match v.area with
    | Some a -> Printf.sprintf " (%s)" (Trace.Area.name a)
    | None -> "")
    v.message

type summary = {
  violations : violation list; (* first [max_violations], in order *)
  n_violations : int; (* total found (deduplicated per rule+addr) *)
  accesses : int;
  syncs : int;
  distinct_addrs : int;
  n_pes : int;
}

(* ------------------------------------------------------------------ *)
(* Shadow state.                                                      *)

(* Per-address shadow word: the first (creating) and last write as
   epochs (pe, clock, area tag) and the reads either as one epoch or,
   once a second PE reads concurrently, as a clock-per-PE vector. *)
type shadow = {
  mutable f_pe : int; (* first write: -1 = never written *)
  mutable f_clk : int;
  mutable w_pe : int; (* last write: -1 = never written *)
  mutable w_clk : int;
  mutable w_area : int;
  mutable r_pe : int; (* -1 = no reads; -2 = vector mode *)
  mutable r_clk : int;
  mutable r_area : int;
  mutable rvec : int array; (* vector mode: last read clock per PE *)
}

let max_pes = R.max_pe + 1

type t = {
  clocks : int array array; (* vector clock per PE *)
  sync_clocks : (int, int array) Hashtbl.t; (* released clock per addr *)
  shadows : (int, shadow) Hashtbl.t;
  pending_trail : int array; (* per-PE: -1, or "just read the trail" *)
  dedup : (string * int, unit) Hashtbl.t;
  mutable violations : violation list; (* reversed *)
  max_violations : int;
  mutable n_violations : int;
  mutable accesses : int;
  mutable syncs : int;
  mutable n_pes : int;
}

let create ?(max_violations = 50) () =
  let clocks = Array.make_matrix max_pes max_pes 0 in
  (* each PE's own component starts at 1 so that the implicit boot
     writes (epoch 0) happen-before everything *)
  for pe = 0 to max_pes - 1 do
    clocks.(pe).(pe) <- 1
  done;
  {
    clocks;
    sync_clocks = Hashtbl.create 256;
    shadows = Hashtbl.create 65536;
    pending_trail = Array.make max_pes (-1);
    dedup = Hashtbl.create 64;
    violations = [];
    max_violations;
    n_violations = 0;
    accesses = 0;
    syncs = 0;
    n_pes = 0;
  }

let report t ~rule ~pe ?(other_pe = -1) ~addr ?area fmt =
  Printf.ksprintf
    (fun message ->
      if not (Hashtbl.mem t.dedup (rule, addr)) then begin
        Hashtbl.add t.dedup (rule, addr) ();
        t.n_violations <- t.n_violations + 1;
        if t.n_violations <= t.max_violations then
          t.violations <-
            { rule; pe; other_pe; addr; area; message } :: t.violations
      end)
    fmt

(* ------------------------------------------------------------------ *)
(* Layout rules.                                                      *)

(* The goal-stack and message-buffer control words (lock, top/bottom
   and head/tail pointers) are initialized by the boot protocol, not
   by traced writes: the first traced access may legitimately be a
   read (e.g. probing an untouched lock). *)
let is_boot_word addr =
  addr < Wam.Layout.code_base
  &&
  let pe = Wam.Layout.pe_of_addr addr in
  let goal_rel = addr - Wam.Layout.goal_base pe in
  let msg_rel = addr - Wam.Layout.msg_base pe in
  (goal_rel >= 0 && goal_rel <= 2) || (msg_rel >= 0 && msg_rel <= 2)

(* Which areas may tag an access at this address, per the layout. *)
let area_allowed addr (area : Trace.Area.t) =
  if addr >= Wam.Layout.code_base then area = Trace.Area.Code
  else begin
    let off = Wam.Layout.offset_of_addr addr in
    if off < Wam.Layout.local_size + Wam.Layout.heap_size then
      if off < Wam.Layout.heap_size then area = Trace.Area.Heap
      else
        match area with
        | Trace.Area.Env_control | Trace.Area.Env_pvar
        | Trace.Area.Parcall_local | Trace.Area.Parcall_global
        | Trace.Area.Parcall_count ->
          true
        | _ -> false
    else begin
      let control_off = Wam.Layout.heap_size + Wam.Layout.local_size in
      let trail_off = control_off + Wam.Layout.control_size in
      let pdl_off = trail_off + Wam.Layout.trail_size in
      let goal_off = pdl_off + Wam.Layout.pdl_size in
      let msg_off = goal_off + Wam.Layout.goal_size in
      if off < trail_off then
        match area with
        | Trace.Area.Choice_point | Trace.Area.Marker -> true
        | _ -> false
      else if off < pdl_off then area = Trace.Area.Trail
      else if off < goal_off then area = Trace.Area.Pdl
      else if off < msg_off then area = Trace.Area.Goal_frame
      else area = Trace.Area.Message
    end
  end

let is_local_locality area_i =
  Trace.Area.locality (Trace.Area.of_int area_i) = Trace.Area.Local

(* ------------------------------------------------------------------ *)
(* Vector-clock plumbing.                                             *)

let note_pe t pe = if pe >= t.n_pes then t.n_pes <- pe + 1

(* hb: did (epoch_pe, epoch_clk) happen before the current point of
   [pe]?  Same-PE epochs are always ordered (program order). *)
let hb t ~pe ~epoch_pe ~epoch_clk =
  epoch_pe = pe || t.clocks.(pe).(epoch_pe) >= epoch_clk

(* Release/Publish: fold the PE's clock into the address's released
   clock (accumulating, so a Join sees every past release), then tick. *)
let sync_release t pe addr =
  let vc = t.clocks.(pe) in
  (match Hashtbl.find_opt t.sync_clocks addr with
  | None -> Hashtbl.replace t.sync_clocks addr (Array.sub vc 0 t.n_pes)
  | Some c ->
    let lc = Array.length c in
    if lc < t.n_pes then begin
      let c' = Array.make t.n_pes 0 in
      Array.blit c 0 c' 0 lc;
      for i = 0 to t.n_pes - 1 do
        c'.(i) <- max c'.(i) vc.(i)
      done;
      Hashtbl.replace t.sync_clocks addr c'
    end
    else
      for i = 0 to lc - 1 do
        c.(i) <- max c.(i) vc.(i)
      done);
  vc.(pe) <- vc.(pe) + 1

(* Acquire/Steal/Join: join the address's released clock into the PE's
   clock.  An address never released joins nothing. *)
let sync_acquire t pe addr =
  match Hashtbl.find_opt t.sync_clocks addr with
  | None -> ()
  | Some c ->
    let vc = t.clocks.(pe) in
    for i = 0 to Array.length c - 1 do
      if c.(i) > vc.(i) then vc.(i) <- c.(i)
    done

(* ------------------------------------------------------------------ *)
(* The per-access checks.                                             *)

let shadow_of t addr =
  match Hashtbl.find_opt t.shadows addr with
  | Some s -> s
  | None ->
    let s =
      {
        f_pe = -1;
        f_clk = 0;
        w_pe = -1;
        w_clk = 0;
        w_area = 0;
        r_pe = -1;
        r_clk = 0;
        r_area = 0;
        rvec = [||];
      }
    in
    Hashtbl.add t.shadows addr s;
    s

(* A synchronized cross-PE conflict: every endpoint on a PE other than
   the address's owner must carry a Global-locality tag, or the hybrid
   protocol would have cached it locally and the remote side would see
   a stale word. *)
let check_tags t ~addr ~pe ~area_i ~other_pe ~other_area_i =
  let owner = Wam.Layout.pe_of_addr addr in
  if pe <> owner && is_local_locality area_i then
    report t ~rule:"tag-locality" ~pe ~other_pe ~addr
      ~area:(Trace.Area.of_int area_i)
      "cross-PE conflict through a Local-tagged access by a non-owner \
       (hybrid protocol would serve it from a stale cache)"
  else if other_pe <> owner && is_local_locality other_area_i then
    report t ~rule:"tag-locality" ~pe:other_pe ~other_pe:pe ~addr
      ~area:(Trace.Area.of_int other_area_i)
      "cross-PE conflict through a Local-tagged access by a non-owner \
       (hybrid protocol would serve it from a stale cache)"

let access t (r : R.t) =
  t.accesses <- t.accesses + 1;
  let pe = r.pe and addr = r.addr and area = r.area in
  note_pe t pe;
  let area_i = Trace.Area.to_int area in
  if not (area_allowed addr area) then
    report t ~rule:"area-bounds" ~pe ~addr ~area
      "area tag disagrees with the address's layout region";
  if area <> Trace.Area.Code then begin
    let s = shadow_of t addr in
    let clk = t.clocks.(pe).(pe) in
    (* stale-trail: the reset write that follows a Trail read must
       target a word that was written at some point *)
    (if t.pending_trail.(pe) >= 0 then begin
       t.pending_trail.(pe) <- -1;
       if r.op = R.Write && area <> Trace.Area.Trail && s.w_pe = -1
          && not (is_boot_word addr)
       then
         report t ~rule:"stale-trail" ~pe ~addr ~area
           "trail entry reset a word that was never written"
     end);
    if r.op = R.Read && area = Trace.Area.Trail then
      t.pending_trail.(pe) <- addr;
    match r.op with
    | R.Read ->
      if s.w_pe = -1 then begin
        if not (is_boot_word addr) then
          report t ~rule:"read-before-write" ~pe ~addr ~area
            "word read before its first write"
      end
      else if s.w_pe <> pe then begin
        if not (hb t ~pe ~epoch_pe:s.w_pe ~epoch_clk:s.w_clk) then begin
          (* Unordered read/write conflict.  On Global (write-through)
             words this is the single-assignment binding race the
             protocol is designed for -- a deref can race with the
             unique binder because either value is coherent -- PROVIDED
             the word's creating write is itself ordered before the
             reader.  A Local tag on either side, or a creating write
             the reader never synchronized with (the dropped-join
             signature), is a real race. *)
          if is_local_locality area_i || is_local_locality s.w_area then
            report t ~rule:"race" ~pe ~other_pe:s.w_pe ~addr ~area
              "Local-tagged word: read unordered with a write by PE%d \
               (no happens-before edge)"
              s.w_pe
          else if
            s.f_pe <> pe
            && not (hb t ~pe ~epoch_pe:s.f_pe ~epoch_clk:s.f_clk)
          then
            report t ~rule:"race" ~pe ~other_pe:s.f_pe ~addr ~area
              "read of a word whose creating write by PE%d was never \
               synchronized with the reader (missing join/steal edge)"
              s.f_pe
        end
        else
          check_tags t ~addr ~pe ~area_i ~other_pe:s.w_pe
            ~other_area_i:s.w_area
      end;
      (* record the read *)
      if s.r_pe = -2 then begin
        if s.rvec.(pe) < clk then s.rvec.(pe) <- clk
      end
      else if s.r_pe = -1 || s.r_pe = pe then begin
        s.r_pe <- pe;
        s.r_clk <- clk;
        s.r_area <- area_i
      end
      else if hb t ~pe ~epoch_pe:s.r_pe ~epoch_clk:s.r_clk then begin
        (* the previous read epoch is ordered before us: replace it *)
        s.r_pe <- pe;
        s.r_clk <- clk;
        s.r_area <- area_i
      end
      else begin
        (* concurrent readers: inflate to a vector *)
        let v = Array.make max_pes 0 in
        v.(s.r_pe) <- s.r_clk;
        v.(pe) <- clk;
        s.rvec <- v;
        s.r_pe <- -2;
        s.r_area <- area_i
      end
    | R.Write ->
      (* Two unordered writes break single assignment even on coherent
         words: flag them regardless of locality. *)
      (if s.w_pe >= 0 && s.w_pe <> pe then
         if not (hb t ~pe ~epoch_pe:s.w_pe ~epoch_clk:s.w_clk) then
           report t ~rule:"race" ~pe ~other_pe:s.w_pe ~addr ~area
             "write unordered with a write by PE%d" s.w_pe
         else
           check_tags t ~addr ~pe ~area_i ~other_pe:s.w_pe
             ~other_area_i:s.w_area);
      (* Write-after-read: unordered is the binder racing a deref,
         benign on Global words (the reader saw the coherent pre-bind
         value), a real race when a Local tag is involved. *)
      let write_vs_read q q_clk =
        if not (hb t ~pe ~epoch_pe:q ~epoch_clk:q_clk) then begin
          if is_local_locality area_i || is_local_locality s.r_area then
            report t ~rule:"race" ~pe ~other_pe:q ~addr ~area
              "Local-tagged word: write unordered with a read by PE%d" q
        end
        else check_tags t ~addr ~pe ~area_i ~other_pe:q ~other_area_i:s.r_area
      in
      (if s.r_pe = -2 then
         for q = 0 to t.n_pes - 1 do
           if q <> pe && s.rvec.(q) > 0 then write_vs_read q s.rvec.(q)
         done
       else if s.r_pe >= 0 && s.r_pe <> pe then write_vs_read s.r_pe s.r_clk);
      if s.f_pe = -1 then begin
        s.f_pe <- pe;
        s.f_clk <- clk
      end;
      s.w_pe <- pe;
      s.w_clk <- clk;
      s.w_area <- area_i;
      (* reads before this write are now covered by the write epoch *)
      s.r_pe <- -1;
      s.rvec <- [||]
  end

let sync_event t (s : R.sync) =
  t.syncs <- t.syncs + 1;
  note_pe t s.spe;
  match s.kind with
  | R.Release | R.Publish -> sync_release t s.spe s.saddr
  | R.Acquire | R.Steal | R.Join -> sync_acquire t s.spe s.saddr

let feed_word t word =
  if R.is_sync_word word then sync_event t (R.unpack_sync word)
  else access t (R.unpack word)

let finish t =
  {
    violations = List.rev t.violations;
    n_violations = t.n_violations;
    accesses = t.accesses;
    syncs = t.syncs;
    distinct_addrs = Hashtbl.length t.shadows;
    n_pes = t.n_pes;
  }

let check_buffer ?max_violations buf =
  let t = create ?max_violations () in
  Trace.Sink.Buffer_sink.iter_packed (fun w -> feed_word t w) buf;
  finish t

let ok (s : summary) = s.n_violations = 0

let pp_summary fmt (s : summary) =
  Format.fprintf fmt
    "%d access(es), %d sync event(s), %d distinct address(es), %d PE(s): "
    s.accesses s.syncs s.distinct_addrs s.n_pes;
  if ok s then Format.fprintf fmt "clean"
  else begin
    Format.fprintf fmt "%d violation(s)" s.n_violations;
    List.iter (fun v -> Format.fprintf fmt "@,  %a" pp_violation v)
      s.violations
  end

let json_of_summary ?(label = "") (s : summary) =
  let b = Buffer.create 256 in
  Buffer.add_string b "{";
  if label <> "" then
    Buffer.add_string b (Printf.sprintf "\"label\": %S, " label);
  Buffer.add_string b
    (Printf.sprintf
       "\"accesses\": %d, \"syncs\": %d, \"distinct_addrs\": %d, \
        \"n_pes\": %d, \"violations\": %d"
       s.accesses s.syncs s.distinct_addrs s.n_pes s.n_violations);
  if s.violations <> [] then begin
    Buffer.add_string b ", \"first\": [";
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string b ", ";
        Buffer.add_string b
          (Printf.sprintf
             "{\"rule\": %S, \"pe\": %d, \"other_pe\": %d, \"addr\": %d, \
              \"area\": %S}"
             v.rule v.pe v.other_pe v.addr
             (match v.area with
             | Some a -> Trace.Area.name a
             | None -> "")))
      s.violations;
    Buffer.add_string b "]"
  end;
  Buffer.add_string b "}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Seeded-defect transforms.

   Each transform takes a clean packed trace and damages it in one
   specific way that a correct RAP-WAM implementation could get wrong;
   the checker must flag each damaged trace with the matching rule.
   The transforms rewrite the packed-word stream directly, so they
   exercise exactly the representation the checker consumes. *)

module Defects = struct

  type defect = {
    name : string;
    rule : string; (* the rule expected to fire *)
    description : string;
  }

  let all =
    [
      {
        name = "dropped-join";
        rule = "race";
        description =
          "remove every Join event: the parent's post-parcall reads of \
           children's results lose their happens-before edge";
      };
      {
        name = "mistagged-parcall-slot";
        rule = "tag-locality";
        description =
          "retag Parcall F./Global accesses as Parcall F./Local: remote \
           PEs now read slot words the hybrid protocol would cache \
           stale";
      };
      {
        name = "unlocked-counter";
        rule = "race";
        description =
          "remove Acquire/Release events on parcall-frame lock words: \
           cross-PE counter updates become unordered";
      };
      {
        name = "read-before-write";
        rule = "read-before-write";
        description = "append a read of a never-written heap word";
      };
      {
        name = "stale-trail";
        rule = "stale-trail";
        description =
          "append a trail-replay reset of a never-written word";
      };
    ]

  let find name = List.find_opt (fun d -> d.name = name) all
  let names = List.map (fun d -> d.name) all

  (* Rebuild [buf] through [f : word -> word option] (None drops the
     word), then append [extra] packed words. *)
  let rewrite ?(extra = []) f buf =
    let out = Trace.Sink.Buffer_sink.create () in
    Trace.Sink.Buffer_sink.iter_packed
      (fun w ->
        match f w with
        | Some w' -> Trace.Sink.Buffer_sink.push out w'
        | None -> ())
      buf;
    List.iter (Trace.Sink.Buffer_sink.push out) extra;
    out

  let keep w = Some w

  (* Drop every Join event. *)
  let dropped_join buf =
    rewrite
      (fun w ->
        if R.is_sync_word w && (R.unpack_sync w).kind = R.Join then None
        else keep w)
      buf

  (* Retag Parcall_global accesses as Parcall_local.  The remote
     endpoints of the parent/thief slot-word handshake then carry a
     Local tag, which the tag-locality rule rejects. *)
  let mistagged_parcall_slot buf =
    let global_tag = Trace.Area.to_int Trace.Area.Parcall_global in
    let local_tag = Trace.Area.to_int Trace.Area.Parcall_local in
    rewrite
      (fun w ->
        if (not (R.is_sync_word w)) && (w lsr 1) land 0x1f = global_tag
        then Some (w land lnot (0x1f lsl 1) lor (local_tag lsl 1))
        else keep w)
      buf

  (* Drop Acquire/Release events on local-stack addresses, i.e. the
     parcall-frame lock words (goal-stack and message locks live in
     their own regions and keep their events). *)
  let unlocked_counter buf =
    rewrite
      (fun w ->
        if R.is_sync_word w then begin
          let s = R.unpack_sync w in
          match s.kind with
          | R.Acquire | R.Release
            when Wam.Layout.is_local_stack_addr s.saddr ->
            None
          | _ -> keep w
        end
        else keep w)
      buf

  (* Append a PE0 read of the last heap word, which no benchmark ever
     writes. *)
  let read_before_write buf =
    let addr = Wam.Layout.heap_limit 0 - 1 in
    rewrite keep buf
      ~extra:
        [ R.pack { R.pe = 0; addr; area = Trace.Area.Heap; op = R.Read } ]

  (* Append a trail-replay pair (Trail read, then the reset write) whose
     reset targets a never-written heap word. *)
  let stale_trail buf =
    let victim = Wam.Layout.heap_limit 0 - 2 in
    let trail_addr = Wam.Layout.trail_base 0 in
    rewrite keep buf
      ~extra:
        [
          R.pack
            { R.pe = 0; addr = trail_addr; area = Trace.Area.Trail;
              op = R.Read };
          R.pack
            { R.pe = 0; addr = victim; area = Trace.Area.Heap;
              op = R.Write };
        ]

  let apply name buf =
    match name with
    | "dropped-join" -> dropped_join buf
    | "mistagged-parcall-slot" -> mistagged_parcall_slot buf
    | "unlocked-counter" -> unlocked_counter buf
    | "read-before-write" -> read_before_write buf
    | "stale-trail" -> stale_trail buf
    | _ -> invalid_arg (Printf.sprintf "Defects.apply: unknown defect %S" name)
end
