(* The fixpoint engine: top-down call-pattern propagation and
   bottom-up success-pattern computation, iterated over a worklist
   until stable.

   Entries (queries) are modeled as pseudo-predicates with negative
   arity keys so they sit in the same worklist as real predicates and
   re-execute when a callee's success pattern changes. *)

type key = string * int

type outcome = {
  patterns : Prolog.Abspat.t;
  iterations : int;
  widened : int;
  open_world : bool;
}

type t = {
  db : Prolog.Database.t;
  modes : Prolog.Modes.t;
  call : (key, Prolog.Abspat.pattern) Hashtbl.t;
  succ : (key, Prolog.Abspat.pattern) Hashtbl.t; (* absent = bottom *)
  callers : (key, key list ref) Hashtbl.t;
  entries : (int, Prolog.Term.t) Hashtbl.t;
  queue : key Queue.t;
  queued : (key, unit) Hashtbl.t;
  recompute : (key, int) Hashtbl.t;
  widen_after : int;
  mutable iterations : int;
  mutable widened : int;
}

let entry_key i : key = ("$entry", -(i + 1))
let is_entry (_, arity) = arity < 0

let enqueue t k =
  if not (Hashtbl.mem t.queued k) then begin
    Hashtbl.add t.queued k ();
    Queue.add k t.queue
  end

let add_caller t ~callee ~caller =
  let cell =
    match Hashtbl.find_opt t.callers callee with
    | Some c -> c
    | None ->
      let c = ref [] in
      Hashtbl.add t.callers callee c;
      c
  in
  if not (List.mem caller !cell) then cell := caller :: !cell

let goal_spec g =
  match g with
  | Prolog.Term.Atom n -> (n, [])
  | Prolog.Term.Struct (n, a) -> (n, a)
  | Prolog.Term.Int _ | Prolog.Term.Var _ -> ("", [])

(* Contribute a call pattern to [callee]; requeue it if it grew. *)
let contribute t ~caller ~callee pat =
  add_caller t ~callee ~caller;
  let grown =
    match Hashtbl.find_opt t.call callee with
    | None ->
      Hashtbl.replace t.call callee pat;
      true
    | Some old ->
      let nu = Prolog.Abspat.join old pat in
      if Prolog.Abspat.equal_pattern nu old then false
      else begin
        Hashtbl.replace t.call callee nu;
        true
      end
  in
  if grown then enqueue t callee

(* One goal.  [None] means the goal cannot succeed here (callee has no
   success pattern yet, or the predicate is undefined, which this
   engine treats as runtime failure): the rest of the clause is
   unreachable and contributes nothing. *)
let exec_goal t ~caller st g =
  match g with
  | Prolog.Term.Var v ->
    (* meta-call: pre-scan already switched to open-world seeding;
       locally the called term may become anything *)
    Some (Absdom.link_all (Absdom.make_any st [ v ]) [ v ])
  | Prolog.Term.Int _ -> None
  | Prolog.Term.Atom _ | Prolog.Term.Struct _ ->
    let name, args = goal_spec g in
    let arity = List.length args in
    if Prolog.Database.has_predicate t.db (name, arity) then begin
      let callee = (name, arity) in
      contribute t ~caller ~callee (Absdom.project st args);
      match Hashtbl.find_opt t.succ callee with
      | None -> None
      | Some sp -> Some (Absdom.apply_success st args sp)
    end
    else begin
      match Builtins.apply st name args with
      | Builtins.Applied st' -> Some st'
      | Builtins.Fails -> None
      | Builtins.Not_builtin -> None (* undefined: fails at run time *)
    end

(* A normalized clause body (only Lit and Par items). *)
let exec_items t ~caller st items =
  List.fold_left
    (fun st_opt item ->
      match st_opt with
      | None -> None
      | Some st -> begin
        match item with
        | Prolog.Cge.Lit g -> exec_goal t ~caller st g
        | Prolog.Cge.Par { arms; _ } ->
          (* arms execute once each whether or not the checks pass
             (the fallback is the same goals run sequentially) *)
          List.fold_left
            (fun st_opt arm ->
              match st_opt with
              | None -> None
              | Some st -> exec_goal t ~caller st arm)
            (Some st) arms
      end)
    (Some st) items

(* A raw entry term: handle the control constructs queries may
   contain (clause bodies have them lifted away by normalization). *)
let join_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some s1, Some s2 -> Some (Absdom.join s1 s2)

let rec exec_term t ~caller st_opt g =
  match st_opt with
  | None -> None
  | Some st -> begin
    match g with
    | Prolog.Term.Struct ((","), [ a; b ])
    | Prolog.Term.Struct ("&", [ a; b ]) ->
      exec_term t ~caller (exec_term t ~caller (Some st) a) b
    | Prolog.Term.Struct (";", [ Prolog.Term.Struct ("->", [ c; th ]); el ])
      ->
      let then_branch =
        exec_term t ~caller (exec_term t ~caller (Some st) c) th
      in
      join_opt then_branch (exec_term t ~caller (Some st) el)
    | Prolog.Term.Struct (";", [ a; b ]) ->
      join_opt (exec_term t ~caller (Some st) a)
        (exec_term t ~caller (Some st) b)
    | Prolog.Term.Struct ("->", [ c; th ]) ->
      exec_term t ~caller (exec_term t ~caller (Some st) c) th
    | Prolog.Term.Struct ("\\+", [ inner ]) ->
      (* no bindings survive; the inner goal still contributes call
         patterns *)
      ignore (exec_term t ~caller (Some st) inner);
      Some st
    | Prolog.Term.Struct (("|" | "=>"), [ cond; goals ])
      when Prolog.Cge.has_par goals ->
      exec_term t ~caller (exec_term t ~caller (Some st) cond) goals
    | _ -> exec_goal t ~caller st g
  end

(* ------------------------------------------------------------------ *)

let head_args head =
  match head with
  | Prolog.Term.Atom _ -> []
  | Prolog.Term.Struct (_, args) -> args
  | Prolog.Term.Int _ | Prolog.Term.Var _ -> []

let requeue_callers t key =
  match Hashtbl.find_opt t.callers key with
  | Some cell -> List.iter (enqueue t) !cell
  | None -> ()

let widen_pred t ((_, arity) as key) =
  t.widened <- t.widened + 1;
  Hashtbl.replace t.call key (Prolog.Abspat.top arity);
  Hashtbl.replace t.succ key (Prolog.Abspat.top arity);
  requeue_callers t key

let process_pred t ((_, arity) as key) =
  match Hashtbl.find_opt t.call key with
  | None -> () (* never called: nothing to do *)
  | Some cp ->
    t.iterations <- t.iterations + 1;
    let n = (match Hashtbl.find_opt t.recompute key with
             | Some n -> n
             | None -> 0) + 1 in
    Hashtbl.replace t.recompute key n;
    if n > t.widen_after then begin
      match Hashtbl.find_opt t.succ key with
      | Some sp when Prolog.Abspat.equal_pattern sp (Prolog.Abspat.top arity)
        ->
        () (* already top: stable *)
      | Some _ | None -> widen_pred t key
    end
    else begin
      let result =
        List.fold_left
          (fun acc (clause : Prolog.Database.clause) ->
            let args = head_args clause.Prolog.Database.head in
            let st0 = Absdom.seed_head cp args in
            match exec_items t ~caller:key st0 clause.Prolog.Database.body with
            | None -> acc
            | Some st_end ->
              let sp = Absdom.project st_end args in
              (match acc with
              | None -> Some sp
              | Some old -> Some (Prolog.Abspat.join old sp)))
          None
          (Prolog.Database.clauses t.db key)
      in
      match result with
      | None -> () (* still bottom *)
      | Some sp ->
        let nu =
          match Hashtbl.find_opt t.succ key with
          | None -> Some sp
          | Some old ->
            let j = Prolog.Abspat.join old sp in
            if Prolog.Abspat.equal_pattern j old then None else Some j
        in
        (match nu with
        | None -> ()
        | Some sp ->
          Hashtbl.replace t.succ key sp;
          requeue_callers t key)
    end

let process_entry t key =
  match Hashtbl.find_opt t.entries (-(snd key) - 1) with
  | None -> ()
  | Some term ->
    t.iterations <- t.iterations + 1;
    ignore (exec_term t ~caller:key (Some Absdom.empty) term)

(* ------------------------------------------------------------------ *)
(* Seeding.                                                           *)

let pattern_of_modes ms =
  let args =
    Array.of_list
      (List.map
         (function
           | Prolog.Modes.Ground_in -> Prolog.Abspat.Ground
           | Prolog.Modes.Free_in_ground_out -> Prolog.Abspat.Free
           | Prolog.Modes.Unknown -> Prolog.Abspat.Any)
         ms)
  in
  let n = Array.length args in
  let share = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i do
      if args.(i) = Prolog.Abspat.Any && args.(j) = Prolog.Abspat.Any then
        share := (i, j) :: !share
    done
  done;
  { Prolog.Abspat.args; share = !share }

(* Is there a variable goal anywhere?  If so, any predicate may be
   called with any arguments: open world. *)
let has_var_goal db entries =
  let item_has = function
    | Prolog.Cge.Lit (Prolog.Term.Var _) -> true
    | Prolog.Cge.Lit _ -> false
    | Prolog.Cge.Par { arms; _ } ->
      List.exists (function Prolog.Term.Var _ -> true | _ -> false) arms
  in
  let db_has =
    List.exists
      (fun key ->
        List.exists
          (fun (c : Prolog.Database.clause) ->
            List.exists item_has c.Prolog.Database.body)
          (Prolog.Database.clauses db key))
      (Prolog.Database.predicates db)
  in
  let rec term_has g =
    match g with
    | Prolog.Term.Var _ -> true
    | Prolog.Term.Struct
        ((("," | "&" | ";" | "->" | "\\+" | "|" | "=>") as f), args) ->
      (* control positions only; an argument variable of an ordinary
         goal is not a meta-call *)
      ignore f;
      List.exists term_has args
    | Prolog.Term.Atom _ | Prolog.Term.Int _ | Prolog.Term.Struct _ -> false
  in
  db_has || List.exists term_has entries

let run ?(entries = []) ?modes ?(widen_after = 40) db =
  let modes =
    match modes with Some m -> m | None -> Prolog.Modes.of_database db
  in
  let t =
    {
      db;
      modes;
      call = Hashtbl.create 64;
      succ = Hashtbl.create 64;
      callers = Hashtbl.create 64;
      entries = Hashtbl.create 8;
      queue = Queue.create ();
      queued = Hashtbl.create 64;
      recompute = Hashtbl.create 64;
      widen_after;
      iterations = 0;
      widened = 0;
    }
  in
  let open_world = has_var_goal db entries in
  let graph = Depgraph.build db in
  (* Seed in the shared bottom-up visit order (callees before
     callers), restricted to the keys being seeded. *)
  let seed_order keys =
    List.filter (fun k -> List.mem k keys) (Depgraph.topo_order graph)
  in
  (* mode contracts *)
  let moded =
    List.filter_map
      (fun ((name, arity) as key) ->
        match Prolog.Modes.lookup modes ~name ~arity with
        | Some ms ->
          Hashtbl.replace t.call key (pattern_of_modes ms);
          Some key
        | None -> None)
      (Prolog.Database.predicates db)
  in
  if open_world then
    List.iter
      (fun ((_, arity) as key) ->
        let pat =
          match Hashtbl.find_opt t.call key with
          | Some p -> Prolog.Abspat.join p (Prolog.Abspat.top arity)
          | None -> Prolog.Abspat.top arity
        in
        Hashtbl.replace t.call key pat)
      (Prolog.Database.predicates db);
  let seeded =
    if open_world then Prolog.Database.predicates db else moded
  in
  List.iter (enqueue t) (seed_order seeded);
  List.iteri
    (fun i term ->
      Hashtbl.replace t.entries i term;
      enqueue t (entry_key i))
    entries;
  (* iterate *)
  while not (Queue.is_empty t.queue) do
    let key = Queue.pop t.queue in
    Hashtbl.remove t.queued key;
    if is_entry key then process_entry t key else process_pred t key
  done;
  (* package *)
  let patterns = Prolog.Abspat.create () in
  Hashtbl.iter
    (fun ((name, arity) as key) call ->
      if not (is_entry key) then begin
        let success =
          match Hashtbl.find_opt t.succ key with
          | Some sp -> sp
          | None -> Prolog.Abspat.bottom arity
        in
        Prolog.Abspat.set patterns ~name ~arity
          { Prolog.Abspat.call; success }
      end)
    t.call;
  { patterns; iterations = t.iterations; widened = t.widened; open_world }
