(** Abstract substitutions over one clause's variables.

    The combined domain tracks, per variable: definite groundness,
    definite freeness (unbound {e and} unaliased), and a may-share
    relation among the remaining variables -- a Pos-style groundness
    component plus pair-sharing with freeness, in the &-Prolog
    tradition.  A variable absent from both sets is fresh, hence free
    and unaliased (the same convention as the annotator). *)

module SS : Set.S with type elt = string

type gfa = Prolog.Abspat.gfa

type t = {
  ground : SS.t;  (** definitely ground *)
  any : SS.t;  (** possibly aliased / partially instantiated *)
  share : (string * string) list;
      (** normalized may-share pairs among [any] variables (sorted) *)
}

val empty : t
(** Every variable fresh (free, unaliased). *)

val gfa_of : t -> string -> gfa

val set_ground : t -> string list -> t
(** Grounding also severs all sharing through those variables. *)

val make_any : t -> string list -> t
(** Weaken to unknown (ground variables stay ground). *)

val link : t -> string -> string -> t
(** Record that two variables may now share; closes over existing
    neighbors (star union), and the pair loses freeness. *)

val link_all : t -> string list -> t

val may_share : t -> string -> string -> bool

val unify : t -> Prolog.Term.t -> Prolog.Term.t -> t
(** Abstract effect of [A = B]. *)

val term_ground : t -> Prolog.Term.t -> bool

val join : t -> t -> t
val equal : t -> t -> bool
val leq : t -> t -> bool

val project : t -> Prolog.Term.t list -> Prolog.Abspat.pattern
(** Call-site projection of goal arguments onto a positional pattern:
    groundness/freeness per position, sharing between positions
    (including [(i, i)] for internal aliasing such as a repeated
    variable in one argument). *)

val apply_success : t -> Prolog.Term.t list -> Prolog.Abspat.pattern -> t
(** Instantiate a callee success pattern back at the call site. *)

val seed_head : Prolog.Abspat.pattern -> Prolog.Term.t list -> t
(** Clause entry state implied by a call pattern over the head
    arguments. *)

val top_for : string list -> t
(** Worst case over the given variables: all [any], all sharing. *)

val pp : Format.formatter -> t -> unit
