(** Top-level driver for the global groundness/sharing analysis.

    [database db] runs the interprocedural fixpoint over the clause
    database and returns the inferred call/success patterns.  Entry
    seeding: every [:- mode] directive declares a calling contract,
    and each [~entries] goal (typically the query about to run) is
    abstractly executed from an all-free store.  The result is only
    valid when the program is run from those entries -- predicates
    reached some other way keep worst-case treatment in the
    annotator, which consults patterns solely for reached predicates.

    Typical pipeline:
    {[
      let summary = Analysis.Analyze.database ~entries:[query] db in
      let annotated =
        Prolog.Annotate.database
          ~patterns:(Analysis.Summary.patterns summary) db
      in
      ...
    ]} *)

val database :
  ?entries:Prolog.Term.t list ->
  ?modes:Prolog.Modes.t ->
  ?widen_after:int ->
  Prolog.Database.t ->
  Summary.t

val entry_of_string : ?ops:Prolog.Ops.t -> string -> Prolog.Term.t
(** Parse a query/entry goal (conjunctions allowed). *)
