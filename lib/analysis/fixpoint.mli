(** Worklist fixpoint over call/success patterns.

    Entry seeding comes from [:- mode] directives (a declared calling
    contract) and from explicit entry goals (queries).  Call patterns
    grow as the join over every call site the analysis reaches;
    success patterns grow bottom-up from [bottom] ("no success known
    yet": a call whose callee has no success pattern aborts the
    clause, the standard optimistic least-fixpoint scheme).  The
    lattice is finite so the iteration terminates; [widen_after] caps
    per-predicate recomputations and jumps a misbehaving predicate to
    top as a safety net.

    A variable goal anywhere in reachable code makes the program
    open-world: every predicate is then seeded with the top call
    pattern. *)

type outcome = {
  patterns : Prolog.Abspat.t;
  iterations : int;  (** predicate-body reanalyses performed *)
  widened : int;  (** predicates forced to top by the iteration cap *)
  open_world : bool;  (** a variable goal forced worst-case seeding *)
}

val run :
  ?entries:Prolog.Term.t list ->
  ?modes:Prolog.Modes.t ->
  ?widen_after:int ->
  Prolog.Database.t ->
  outcome
