(* Abstract transfer functions for the builtins (success-substitution
   semantics: the result describes the store *when the goal succeeds*,
   so e.g. `X < Y` may assert both arguments ground -- a call where
   they are not simply fails).

   Tests and comparisons bind nothing, so they leave the substitution
   unchanged; type tests that entail groundness strengthen it. *)

type result =
  | Applied of Absdom.t  (* builtin; state after a successful call *)
  | Fails  (* cannot succeed: the rest of the clause is unreachable *)
  | Not_builtin

let vars = Prolog.Term.vars

let apply st name args =
  match (name, args) with
  | "=", [ a; b ] -> Applied (Absdom.unify st a b)
  | ("fail" | "false"), [] -> Fails
  | ("true" | "!" | "nl" | "halt"), [] -> Applied st
  | "is", [ a; b ] ->
    Applied (Absdom.set_ground st (vars a @ vars b))
  | ("<" | ">" | "=<" | ">=" | "=:=" | "=\\="), [ a; b ] ->
    Applied (Absdom.set_ground st (vars a @ vars b))
  | ("atomic" | "atom" | "integer" | "ground"), [ a ] ->
    Applied (Absdom.set_ground st (vars a))
  | ("var" | "nonvar" | "compound"), [ _ ] -> Applied st
  | ("\\=" | "==" | "\\==" | "@<" | "@>" | "@=<" | "@>=" | "indep"), [ _; _ ]
    ->
    Applied st
  | ("write" | "print"), [ _ ] -> Applied st
  | ("functor" | "arg"), [ _; _; _ ] | "=..", [ _; _ ] ->
    (* structure builders: conservatively alias everything they touch *)
    let vs = List.concat_map vars args in
    Applied (Absdom.link_all (Absdom.make_any st vs) vs)
  | _ -> Not_builtin
