(* Abstract substitutions: definite groundness + freeness + pair
   sharing.  Purely functional so branch joins and fixpoint snapshots
   are cheap to reason about.

   Soundness notes mirrored from the annotator:
   - grounding a variable severs every sharing pair through it;
   - linking u-v (an abstract binding that may connect their terms)
     star-closes over the current neighbors of both sides: anything
     sharing u may afterwards share anything sharing v;
   - Var = t links the variable to t's variables but not t's variables
     to each other (they occupy disjoint subterms of t). *)

module SS = Set.Make (String)

module PS = Set.Make (struct
  type t = string * string

  let compare = compare
end)

type gfa = Prolog.Abspat.gfa

type t = {
  ground : SS.t;
  any : SS.t;
  share : (string * string) list; (* sorted, normalized x <= y, x <> y *)
}

let empty = { ground = SS.empty; any = SS.empty; share = [] }

let norm x y : string * string = if x <= y then (x, y) else (y, x)

let gfa_of t v =
  if SS.mem v t.ground then Prolog.Abspat.Ground
  else if SS.mem v t.any then Prolog.Abspat.Any
  else Prolog.Abspat.Free

let set_ground t vs =
  let g = List.fold_left (fun acc v -> SS.add v acc) t.ground vs in
  {
    ground = g;
    any = SS.diff t.any g;
    share = List.filter (fun (x, y) -> not (SS.mem x g || SS.mem y g)) t.share;
  }

let make_any t vs =
  let a =
    List.fold_left
      (fun acc v -> if SS.mem v t.ground then acc else SS.add v acc)
      t.any vs
  in
  { t with any = a }

let neighbors t v =
  List.fold_left
    (fun acc (x, y) ->
      if x = v then y :: acc else if y = v then x :: acc else acc)
    [ v ] t.share

let may_share t x y =
  x = y
  || List.mem (norm x y) t.share

let link t u v =
  if u = v || SS.mem u t.ground || SS.mem v t.ground then t
  else begin
    let nu = neighbors t u and nv = neighbors t v in
    let pairs =
      List.concat_map
        (fun x ->
          List.filter_map
            (fun y -> if x = y then None else Some (norm x y))
            nv)
        nu
    in
    let share = List.sort_uniq compare (pairs @ t.share) in
    let t = make_any t (nu @ nv) in
    { t with share }
  end

let link_all t vs =
  let rec go t = function
    | [] -> t
    | v :: rest -> go (List.fold_left (fun t w -> link t v w) t rest) rest
  in
  go t vs

let term_ground t tm =
  List.for_all (fun v -> SS.mem v t.ground) (Prolog.Term.vars tm)

let unify t a b =
  if term_ground t a then set_ground t (Prolog.Term.vars b)
  else if term_ground t b then set_ground t (Prolog.Term.vars a)
  else begin
    match (a, b) with
    | Prolog.Term.Var x, _ ->
      List.fold_left (fun t v -> link t x v) t (Prolog.Term.vars b)
    | _, Prolog.Term.Var y ->
      List.fold_left (fun t v -> link t y v) t (Prolog.Term.vars a)
    | _, _ ->
      let va = Prolog.Term.vars a and vb = Prolog.Term.vars b in
      List.fold_left
        (fun t u -> List.fold_left (fun t v -> link t u v) t vb)
        t va
  end

let join a b =
  (* G |_| F = Any: a variable ground on one path and free on the
     other is unknown afterwards *)
  let ground = SS.inter a.ground b.ground in
  let any =
    SS.diff
      (SS.union (SS.union a.any b.any) (SS.union a.ground b.ground))
      ground
  in
  let share =
    List.filter
      (fun (x, y) -> not (SS.mem x ground || SS.mem y ground))
      (List.sort_uniq compare (a.share @ b.share))
  in
  { ground; any; share }

let equal a b =
  SS.equal a.ground b.ground && SS.equal a.any b.any && a.share = b.share

let leq a b = equal (join a b) b

let top_for vs =
  let t = make_any empty vs in
  link_all t vs

(* ------------------------------------------------------------------ *)
(* Pattern interface.                                                 *)

let rec count_var v tm =
  match tm with
  | Prolog.Term.Var w -> if v = w then 1 else 0
  | Prolog.Term.Atom _ | Prolog.Term.Int _ -> 0
  | Prolog.Term.Struct (_, args) ->
    List.fold_left (fun n a -> n + count_var v a) 0 args

let project t args =
  let arg_vars = Array.of_list (List.map Prolog.Term.vars args) in
  let n = Array.length arg_vars in
  let gfa_arg arg =
    if term_ground t arg then Prolog.Abspat.Ground
    else begin
      match arg with
      | Prolog.Term.Var v when gfa_of t v = Prolog.Abspat.Free ->
        Prolog.Abspat.Free
      | _ -> Prolog.Abspat.Any
    end
  in
  let args_arr = Array.of_list args in
  let pat_args = Array.map gfa_arg args_arr in
  let nonground v = gfa_of t v <> Prolog.Abspat.Ground in
  let share = ref [] in
  for i = 0 to n - 1 do
    (* internal aliasing: a repeated non-ground variable inside one
       argument, or two of its variables sharing *)
    let vs_i = List.filter nonground arg_vars.(i) in
    let internal =
      List.exists (fun v -> count_var v args_arr.(i) > 1) vs_i
      || List.exists
           (fun u ->
             List.exists (fun v -> u <> v && may_share t u v) vs_i)
           vs_i
    in
    if internal then share := (i, i) :: !share;
    for j = i + 1 to n - 1 do
      let vs_j = List.filter nonground arg_vars.(j) in
      if
        List.exists
          (fun u -> List.exists (fun v -> may_share t u v) vs_j)
          vs_i
      then share := (i, j) :: !share
    done
  done;
  { Prolog.Abspat.args = pat_args; share = List.sort compare !share }

let apply_positional t args (pat : Prolog.Abspat.pattern) =
  let arg_vars = Array.of_list (List.map Prolog.Term.vars args) in
  let t = ref t in
  Array.iteri
    (fun i vs ->
      match pat.Prolog.Abspat.args.(i) with
      | Prolog.Abspat.Ground -> t := set_ground !t vs
      | Prolog.Abspat.Free -> ()
      | Prolog.Abspat.Any -> t := make_any !t vs)
    arg_vars;
  List.iter
    (fun (i, j) ->
      if i = j then t := link_all !t arg_vars.(i)
      else
        List.iter
          (fun u -> List.iter (fun v -> t := link !t u v) arg_vars.(j))
          arg_vars.(i))
    pat.Prolog.Abspat.share;
  !t

let apply_success t args pat = apply_positional t args pat

let seed_head pat args =
  (* a head variable repeated across argument positions aliases the
     corresponding caller terms with each other; apply_positional only
     weakens it per-position, which is sound because the repeat makes
     it Any in each *)
  let t = apply_positional empty args pat in
  (* same variable in two positions: it is certainly not fresh unless
     every position asserts freeness of a distinct variable *)
  let seen = Hashtbl.create 8 in
  let repeated = ref [] in
  List.iter
    (fun arg ->
      List.iter
        (fun v ->
          if Hashtbl.mem seen v then repeated := v :: !repeated
          else Hashtbl.add seen v ())
        (List.sort_uniq compare (Prolog.Term.vars arg)))
    args;
  make_any t !repeated

let pp fmt t =
  let vars =
    List.sort_uniq compare (SS.elements t.ground @ SS.elements t.any)
  in
  Format.fprintf fmt "{%s"
    (String.concat ", "
       (List.map
          (fun v ->
            Printf.sprintf "%s:%s" v
              (Prolog.Abspat.gfa_to_string (gfa_of t v)))
          vars));
  (match t.share with
  | [] -> ()
  | pairs ->
    Format.fprintf fmt " | %s"
      (String.concat ", "
         (List.map (fun (x, y) -> Printf.sprintf "%s~%s" x y) pairs)));
  Format.pp_print_string fmt "}"
