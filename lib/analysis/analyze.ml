let database ?entries ?modes ?widen_after db =
  let outcome = Fixpoint.run ?entries ?modes ?widen_after db in
  let graph = Depgraph.build db in
  let sccs = Depgraph.sccs graph in
  let stats =
    {
      Summary.predicates = Prolog.Database.predicate_count db;
      reached = Prolog.Abspat.size outcome.Fixpoint.patterns;
      iterations = outcome.Fixpoint.iterations;
      widened = outcome.Fixpoint.widened;
      scc_count = List.length sccs;
      open_world = outcome.Fixpoint.open_world;
    }
  in
  Summary.make ~patterns:outcome.Fixpoint.patterns ~stats ~sccs

let entry_of_string ?ops s = Prolog.Parser.term_of_string ?ops s
