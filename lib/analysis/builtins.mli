(** Abstract transfer functions for builtin goals. *)

type result =
  | Applied of Absdom.t  (** a builtin; state after a successful call *)
  | Fails  (** cannot succeed ([fail]/[false]) *)
  | Not_builtin

val apply : Absdom.t -> string -> Prolog.Term.t list -> result
(** [apply st name args] is the success-substitution effect of the
    goal [name(args)] on [st] when it is a recognized builtin. *)
