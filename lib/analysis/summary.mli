(** Results of one global analysis run: the per-predicate
    call/success pattern table plus convergence statistics. *)

type stats = {
  predicates : int;  (** predicates in the database *)
  reached : int;  (** predicates the analysis reached (have patterns) *)
  iterations : int;  (** body reanalyses until the fixpoint *)
  widened : int;  (** predicates jumped to top by the iteration cap *)
  scc_count : int;  (** strongly connected components in the call graph *)
  open_world : bool;  (** a variable goal forced worst-case seeding *)
}

type t

val make :
  patterns:Prolog.Abspat.t ->
  stats:stats ->
  sccs:(string * int) list list ->
  t

val patterns : t -> Prolog.Abspat.t
val stats : t -> stats
val sccs : t -> (string * int) list list

val find :
  t -> name:string -> arity:int -> Prolog.Abspat.entry option

val pp : Format.formatter -> t -> unit
(** Dump the pattern table and statistics (the [--dump-analysis]
    output of [bin/annotate]). *)
