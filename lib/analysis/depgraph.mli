(** Static predicate call graph and its strongly connected
    components, used to order the fixpoint iteration bottom-up and to
    report mutual-recursion groups. *)

type key = string * int

type t

val build : Prolog.Database.t -> t
(** Edges from each predicate to the database predicates its clause
    bodies call (CGE arms included). *)

val callees : t -> key -> key list

val sccs : t -> key list list
(** Strongly connected components in reverse topological order
    (callees before callers); deterministic. *)

val scc_index : t -> key -> int
(** Index of a predicate's component in the {!sccs} list (-1 if the
    predicate is unknown). *)

val topo_order : t -> key list
(** The {!sccs} list flattened: every predicate exactly once, callees
    before callers, ties broken by first-definition order.  Both the
    fixpoint seeding and the costan recurrence pass iterate in this
    order, so analysis output is stable across runs. *)
