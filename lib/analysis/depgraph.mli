(** Static predicate call graph and its strongly connected
    components, used to order the fixpoint iteration bottom-up and to
    report mutual-recursion groups. *)

type key = string * int

type t

val build : Prolog.Database.t -> t
(** Edges from each predicate to the database predicates its clause
    bodies call (CGE arms included). *)

val callees : t -> key -> key list

val sccs : t -> key list list
(** Strongly connected components in reverse topological order
    (callees before callers); deterministic. *)

val scc_index : t -> key -> int
(** Index of a predicate's component in the {!sccs} list (-1 if the
    predicate is unknown). *)
