(* Predicate call graph + Tarjan SCC.  Program call graphs here are
   small (tens of predicates), so the recursive formulation is fine. *)

type key = string * int

type t = {
  keys : key list; (* first-definition order *)
  edges : (key, key list) Hashtbl.t;
  mutable sccs_memo : key list list option;
  index : (key, int) Hashtbl.t; (* key -> scc index *)
}

let goal_key db g =
  let name, arity =
    match g with
    | Prolog.Term.Atom n -> (n, 0)
    | Prolog.Term.Struct (n, args) -> (n, List.length args)
    | Prolog.Term.Int _ | Prolog.Term.Var _ -> ("", -1)
  in
  if Prolog.Database.has_predicate db (name, arity) then Some (name, arity)
  else None

let build db =
  let keys = Prolog.Database.predicates db in
  let edges = Hashtbl.create 64 in
  List.iter
    (fun key ->
      let callees = ref [] in
      let add g =
        match goal_key db g with
        | Some k -> if not (List.mem k !callees) then callees := k :: !callees
        | None -> ()
      in
      List.iter
        (fun (clause : Prolog.Database.clause) ->
          List.iter
            (function
              | Prolog.Cge.Lit g -> add g
              | Prolog.Cge.Par { arms; _ } -> List.iter add arms)
            clause.Prolog.Database.body)
        (Prolog.Database.clauses db key);
      Hashtbl.replace edges key (List.rev !callees))
    keys;
  { keys; edges; sccs_memo = None; index = Hashtbl.create 64 }

let callees t key =
  match Hashtbl.find_opt t.edges key with Some ks -> ks | None -> []

(* Tarjan, visiting keys in definition order for determinism. *)
let compute_sccs t =
  let idx = Hashtbl.create 64 in
  let low = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strong v =
    Hashtbl.replace idx v !counter;
    Hashtbl.replace low v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem idx w) then begin
          strong w;
          Hashtbl.replace low v
            (min (Hashtbl.find low v) (Hashtbl.find low w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find idx w)))
      (callees t v);
    if Hashtbl.find low v = Hashtbl.find idx v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if w = v then w :: acc else pop (w :: acc)
      in
      out := pop [] :: !out
    end
  in
  List.iter (fun k -> if not (Hashtbl.mem idx k) then strong k) t.keys;
  (* Tarjan emits components in reverse topological order already;
     [out] accumulated by consing, so reverse back. *)
  let sccs = List.rev !out in
  List.iteri
    (fun i comp -> List.iter (fun k -> Hashtbl.replace t.index k i) comp)
    sccs;
  sccs

let sccs t =
  match t.sccs_memo with
  | Some s -> s
  | None ->
    let s = compute_sccs t in
    t.sccs_memo <- Some s;
    s

let scc_index t key =
  ignore (sccs t);
  match Hashtbl.find_opt t.index key with Some i -> i | None -> -1

(* Flattened SCC list: a deterministic bottom-up (callees before
   callers) visit order shared by the fixpoint seeding and the cost
   analyzer's recurrence pass. *)
let topo_order t = List.concat (sccs t)
