type stats = {
  predicates : int;
  reached : int;
  iterations : int;
  widened : int;
  scc_count : int;
  open_world : bool;
}

type t = {
  patterns : Prolog.Abspat.t;
  stats : stats;
  sccs : (string * int) list list;
}

let make ~patterns ~stats ~sccs = { patterns; stats; sccs }

let patterns t = t.patterns
let stats t = t.stats
let sccs t = t.sccs

let find t ~name ~arity = Prolog.Abspat.find t.patterns ~name ~arity

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Prolog.Abspat.pp fmt t.patterns;
  Format.fprintf fmt
    "%% %d/%d predicates reached, %d iterations, %d SCCs, %d widened%s@]"
    t.stats.reached t.stats.predicates t.stats.iterations t.stats.scc_count
    t.stats.widened
    (if t.stats.open_world then " (open world: variable goal present)"
     else "")
