(** Per-predicate dynamic profiling from the reference stream.

    Attribution works by code-range ownership: the compiler lays each
    predicate out contiguously from its entry address, so instruction
    fetches select the owning predicate and subsequent data references
    (by the same PE) are charged to it.  Entry-address fetches count
    procedure calls.  Works for sequential and parallel traces. *)

type counters = {
  fid : int;
  entry : int;
  mutable calls : int;
  mutable instrs : int;
  mutable cp_created : int;  (** [try] fetches: choice points pushed *)
  mutable cp_elided : int;
      (** [det_try] fetches: certified chains entered shallow instead *)
  mutable trail_elided : int;
      (** fetches of binding-certified instructions that skip the trail
          check ([_u] gets, [builtin_nt], [put_uninit]) *)
  mutable deref_skipped : int;
      (** fetches of [_r]/[_u] gets that skip the argument dereference *)
  refs : int array;  (** data references, indexed by [Trace.Area.to_int] *)
}

type t

val create : Symbols.t -> Code.t -> t

val sink : t -> Trace.Sink.t
(** Feed this sink (tee it with others) during a run. *)

val owner : t -> int -> counters option
(** Owning predicate of an instruction index, if any. *)

val data_refs : counters -> int
val spec : t -> counters -> string
(** ["name/arity"]. *)

val ranked : t -> counters list
(** Predicates that did any work, busiest (most data refs) first;
    deterministic order. *)

val pp : Format.formatter -> t -> unit
val to_json : Buffer.t -> t -> unit
