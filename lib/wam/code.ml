(* The code area: a growable instruction table with a predicate entry
   map and backpatching support for forward labels.

   Instruction "addresses" are indices into the table; for tracing they
   map to the shared read-only code region at [Layout.code_base]. *)

type t = {
  instrs : Instr.t Vec.t;
  entries : (int, int) Hashtbl.t; (* predicate functor id -> address *)
  blocks : (int * int) Vec.t; (* (start address, functor id), for listing *)
}

let create () =
  {
    instrs = Vec.create ~dummy:Instr.Proceed;
    entries = Hashtbl.create 64;
    blocks = Vec.create ~dummy:(0, 0);
  }

let here t = Vec.length t.instrs

let emit t i =
  let addr = here t in
  Vec.add t.instrs i;
  addr

let patch t addr i = Vec.set t.instrs addr i

let fetch t addr = Vec.get t.instrs addr

let length t = Vec.length t.instrs

let set_entry t fid addr =
  Hashtbl.replace t.entries fid addr;
  Vec.add t.blocks (addr, fid)

let entry t fid = Hashtbl.find_opt t.entries fid

let iter_entries t f = Hashtbl.iter f t.entries

let trace_addr addr = Layout.code_base + addr

(* Disassembly listing, for debugging and documentation. *)
let pp symbols fmt t =
  let block_starts = Hashtbl.create 64 in
  Vec.iter (fun (addr, fid) -> Hashtbl.replace block_starts addr fid) t.blocks;
  Vec.iteri
    (fun addr i ->
      (match Hashtbl.find_opt block_starts addr with
      | Some fid ->
        Format.fprintf fmt "@,%s:@," (Symbols.spec_string symbols fid)
      | None -> ());
      Format.fprintf fmt "  %4d  %a@," addr Instr.pp i)
    t.instrs
