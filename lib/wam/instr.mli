(** The RAP-WAM instruction set: the standard WAM repertoire plus the
    parallel extensions.  Labels are absolute code addresses; [-1] as a
    switch target means "fail". *)

type reg =
  | X of int  (** temporary/argument register (no memory traffic) *)
  | Y of int  (** permanent variable slot in the environment *)

type t =
  (* put group: load argument registers before a call *)
  | Put_variable of reg * int
      (** create an unbound variable (heap for X, environment for Y)
          and load it into A_i *)
  | Put_value of reg * int
  | Put_unsafe_value of int * int
      (** like [Put_value Y] but globalizes a still-unbound environment
          variable before the environment is deallocated (LCO) *)
  | Put_constant of int * int  (** atom id, A_i *)
  | Put_integer of int * int
  | Put_nil of int
  | Put_structure of int * int  (** functor id, A_i; enters write mode *)
  | Put_list of int
  (* get group: head argument unification *)
  | Get_variable of reg * int
  | Get_value of reg * int
  | Get_constant of int * int
  | Get_integer of int * int
  | Get_nil of int
  | Get_structure of int * int
      (** read mode on a matching structure, write mode on a variable *)
  | Get_list of int
  (* unify group: structure arguments, read or write mode *)
  | Unify_variable of reg
  | Unify_value of reg
  | Unify_local_value of reg
      (** like [Unify_value] but globalizes unbound stack variables in
          write mode *)
  | Unify_constant of int
  | Unify_integer of int
  | Unify_nil
  | Unify_void of int  (** skip (read) or create (write) n cells *)
  (* control *)
  | Allocate of int  (** push an environment with n permanent slots *)
  | Deallocate
  | Call of int  (** predicate functor id; saves CP, sets B0 *)
  | Execute of int  (** last-call transfer *)
  | Proceed
  | Jump of int
  | Halt_ok  (** the query succeeded *)
  (* choice *)
  | Try of int  (** push a choice point, continue at the label *)
  | Retry of int  (** update the alternative, continue at the label *)
  | Trust of int  (** pop the choice point, continue at the label *)
  | Det_try of int
      (** enter a determinacy-certified chain: snapshot the registers
          into the worker-private shallow frame (no choice-point words
          written, nothing trailed until the clause commits) *)
  | Det_retry of int
      (** shallow analogue of [Retry]: update the frame's alternative *)
  | Det_trust of int
      (** deactivate the shallow frame and run the last alternative *)
  (* binding-certified specializations (lib/bindan) *)
  | Get_structure_r of int * int
      (** [Get_structure] for an argument certified rigid at deref
          depth 0: the register holds a non-reference cell, so the
          deref loop is skipped entirely.  A Ref cell contradicts the
          certificate and fails *)
  | Get_list_r of int
  | Get_value_r of reg * int
      (** depth-0 rigid [Get_value]: full unification without first
          dereferencing the argument register *)
  | Get_structure_u of int * int
      (** [Get_structure] for an argument certified free and
          unconditional (the caller created the cell after every
          enclosing choice point and parcall trail floor): overwrite
          the self-reference directly — no deref read, no trail test,
          no trail write *)
  | Get_list_u of int
  | Get_constant_u of int * int
  | Get_integer_u of int * int
  | Get_nil_u of int
  | Builtin_nt of Builtin.t * int
      (** builtin whose bindings are certified unconditional: the
          worker's bind skips trailing for the builtin's duration *)
  | Put_uninit of reg * int
      (** [Put_variable] for an output argument every consumer reads
          through a certified [_u] write: the heap cell's
          self-reference initialization is dead (the first real access
          is the callee's overwrite), so it is elided — the cell is
          allocated with an untraced store *)
  | Get_value_u of reg * int
      (** [Get_value] whose bindings are certified unconditional (no
          live choice point can predate any cell the unification
          touches): full unification semantics, every trail test and
          write elided for the instruction's duration *)
  (* indexing *)
  | Switch_on_term of {
      var_l : int;
      con_l : int;
      int_l : int;
      lis_l : int;
      str_l : int;
    }  (** dispatch on the dereferenced first argument's tag *)
  | Switch_on_constant of (int * int) array * int
      (** (atom id, label) table plus a default (variable-headed
          clauses) *)
  | Switch_on_integer of (int * int) array * int
  | Switch_on_structure of (int * int) array * int
  (* cut *)
  | Neck_cut  (** discard choice points newer than B0 *)
  | Get_level of int  (** Y_n := B0 *)
  | Cut_to of int  (** discard down to the level saved in Y_n *)
  (* escapes *)
  | Builtin of Builtin.t * int  (** builtin, arity (args in A1..An) *)
  (* RAP-WAM parallel extensions *)
  | Check_ground of reg * int
      (** jump to the sequential version unless the register holds a
          ground term *)
  | Check_indep of reg * reg * int
  | Check_size of reg * int * int
      (** (register, minimum size, else-label): jump to the sequential
          version unless the term's size (structure cells walked, bounded
          by the constant) reaches the minimum — the granularity-control
          guard emitted by [bin/annotate --granularity] *)
  | Alloc_parcall of int * int
      (** (number of PUSHED goals, join address): push a parcall frame
          and make it the backtrack barrier; the CGE's first goal runs
          inline afterwards *)
  | Push_goal of int * int * int
      (** (slot, predicate functor id, arity): copy A1..An into a goal
          frame on the own goal stack *)
  | Par_join
      (** run own pending goals / wait for remote check-ins; continue
          when the parcall's counter reaches zero; entry point of the
          failure protocol *)
  | Goal_done  (** return point of popped and stolen goals *)

val opcode : t -> int
val opcode_count : int
val opcode_name : int -> string
val pp_reg : Format.formatter -> reg -> unit
val pp : Format.formatter -> t -> unit
