(** A compiled program: database + symbol table + code + query entry.

    The query is compiled as a synthetic predicate whose arguments are
    the query's free variables, so drivers can seed A1..Ak with fresh
    heap variables and decode the answers from them. *)

type t = {
  db : Prolog.Database.t;
  symbols : Symbols.t;
  code : Code.t;
  query_fid : int;
  query_vars : string list;
}

val query_name : string

val of_database :
  ?parallel:bool -> ?det:Compile.det_plan -> ?bind:Compile.bind_plan ->
  ?chains:Compile.chain_info list ref -> ?ops:Prolog.Ops.t ->
  Prolog.Database.t -> query:string -> unit -> t
(** Add the query to the database and compile everything.
    [parallel = false] gives the sequential WAM baseline (CGEs read as
    plain conjunctions).  [det] enables determinacy-driven
    choice-point elision; [bind] enables binding-certified
    instruction specialization; [chains] logs every emitted try
    chain. *)

val prepare :
  ?parallel:bool -> ?det:Compile.det_plan -> ?bind:Compile.bind_plan ->
  ?chains:Compile.chain_info list ref -> ?ops:Prolog.Ops.t ->
  src:string -> query:string -> unit -> t
(** Parse and load [src] first, then {!of_database}. *)

val entry : t -> int
(** Code address of the compiled query. *)

val arity : t -> int
(** Number of query variables. *)

val pp_listing : Format.formatter -> t -> unit
(** Disassembly of the whole compiled program. *)
