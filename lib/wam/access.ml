(* Static memory-access metadata of the instruction set.

   The footprints below mirror Exec/Core: every traced reference an
   instruction can emit appears here with its area and direction.
   Failure-path effects (choice-point restore, trail replay, binding
   resets) are shared by all failing instructions and exposed
   separately through [failure], because the machine attributes them
   to whatever predicate the PE last fetched — the failing one.

   Groundness refinement: head unification against a ground argument
   runs in read mode, so with a [ctx] proving the register ground the
   get/unify footprints drop their binding writes.  The refinement is
   one-sided — it may only remove accesses that provably cannot
   happen; mismatch failure remains possible (ground terms still fail
   to unify), so [may_fail] is not refined. *)

type op = R | W

type acc = { area : Trace.Area.t; op : op }

type ctx = { ground : Instr.reg -> bool; struct_ground : bool }

let conservative = { ground = (fun _ -> false); struct_ground = false }

let rd a = { area = a; op = R }
let wr a = { area = a; op = W }

open Trace.Area

(* Dereferencing follows Ref chains through heap and permanent
   variables (local-stack term cells). *)
let deref = [ rd Heap; rd Env_pvar ]

(* Binding writes through to a heap or local-stack cell and pushes a
   trail entry when the binding is conditional or cross-PE. *)
let bind = [ wr Heap; wr Env_pvar; wr Trail ]

let hpush = [ wr Heap ]
let pdl = [ rd Pdl; wr Pdl ]

(* General unification: deref both sides, PDL traversal, structure
   reads, bindings on either side. *)
let unify_full = deref @ pdl @ [ rd Heap ] @ bind

let get_reg : Instr.reg -> acc list = function
  | Instr.X _ -> []
  | Instr.Y _ -> [ rd Env_pvar ]

let set_reg : Instr.reg -> acc list = function
  | Instr.X _ -> []
  | Instr.Y _ -> [ wr Env_pvar ]

let builtin (b : Builtin.t) =
  match b with
  | Builtin.Is -> deref @ [ rd Heap ] @ bind
  | Builtin.Lt | Builtin.Gt | Builtin.Le | Builtin.Ge | Builtin.Arith_eq
  | Builtin.Arith_ne ->
    deref @ [ rd Heap ]
  | Builtin.Unify -> unify_full
  | Builtin.Not_unify -> unify_full @ [ rd Trail ] (* trial bindings undone *)
  | Builtin.Term_eq | Builtin.Term_ne | Builtin.Term_lt | Builtin.Term_gt
  | Builtin.Term_le | Builtin.Term_ge ->
    deref @ [ rd Heap ]
  | Builtin.Var_p | Builtin.Nonvar_p | Builtin.Atom_p | Builtin.Integer_p
  | Builtin.Atomic_p | Builtin.Compound_p ->
    deref
  | Builtin.Ground_p | Builtin.Indep_p -> deref @ [ rd Heap ]
  | Builtin.True_b | Builtin.Fail_b | Builtin.Halt_b | Builtin.Nl -> []
  | Builtin.Write_t | Builtin.Print_t -> deref @ [ rd Heap ]
  | Builtin.Functor_b -> deref @ [ rd Heap ] @ hpush @ bind
  | Builtin.Arg_b -> deref @ [ rd Heap ] @ bind
  | Builtin.Univ -> deref @ [ rd Heap ] @ hpush @ bind

let of_instr ?(ctx = conservative) (i : Instr.t) =
  match i with
  (* put group *)
  | Instr.Put_variable (Instr.X _, _) -> hpush
  | Instr.Put_variable (Instr.Y _, _) -> [ wr Env_pvar ]
  | Instr.Put_value (r, _) -> get_reg r
  | Instr.Put_unsafe_value _ -> [ rd Env_pvar ] @ deref @ hpush @ bind
  | Instr.Put_constant _ | Instr.Put_integer _ | Instr.Put_nil _
  | Instr.Put_list _ ->
    []
  | Instr.Put_structure _ -> hpush
  (* get group: ground argument => pure read-mode matching *)
  | Instr.Get_variable (r, _) -> set_reg r
  | Instr.Get_value (r, _) ->
    if ctx.ground r then get_reg r @ deref @ pdl @ [ rd Heap ]
    else get_reg r @ unify_full
  | Instr.Get_constant (_, a) | Instr.Get_integer (_, a) ->
    if ctx.ground (Instr.X a) then deref else deref @ bind
  | Instr.Get_nil a ->
    if ctx.ground (Instr.X a) then deref else deref @ bind
  | Instr.Get_structure (_, a) | Instr.Get_list a ->
    if ctx.ground (Instr.X a) then deref @ [ rd Heap ]
    else deref @ [ rd Heap ] @ hpush @ bind
  (* unify group: a ground structure being read never binds its own
     cells; register-side terms may still be bound unless also ground *)
  | Instr.Unify_variable r ->
    if ctx.struct_ground then rd Heap :: set_reg r
    else [ rd Heap; wr Heap ] @ set_reg r
  | Instr.Unify_value r | Instr.Unify_local_value r ->
    if ctx.struct_ground && ctx.ground r then
      get_reg r @ deref @ pdl @ [ rd Heap ]
    else get_reg r @ unify_full
  | Instr.Unify_constant _ | Instr.Unify_integer _ | Instr.Unify_nil ->
    if ctx.struct_ground then rd Heap :: deref
    else [ rd Heap; wr Heap ] @ deref @ [ wr Env_pvar; wr Trail ]
  | Instr.Unify_void _ -> if ctx.struct_ground then [] else hpush
  (* control *)
  | Instr.Allocate _ -> [ wr Env_control ]
  | Instr.Deallocate -> [ rd Env_control ]
  | Instr.Call _ | Instr.Execute _ | Instr.Proceed | Instr.Jump _
  | Instr.Halt_ok ->
    []
  (* choice *)
  | Instr.Try _ -> [ wr Choice_point ]
  | Instr.Retry _ -> [ rd Choice_point; wr Choice_point ]
  | Instr.Trust _ -> [ rd Choice_point ]
  (* determinacy-certified chains: the shallow frame lives in
     processor registers, so the chain instructions themselves touch
     no memory (commit-time trail flushes are charged to the binding
     instructions, whose footprints already include the trail write) *)
  | Instr.Det_try _ | Instr.Det_retry _ | Instr.Det_trust _ -> []
  (* indexing *)
  | Instr.Switch_on_term _ | Instr.Switch_on_constant _
  | Instr.Switch_on_integer _ ->
    deref
  | Instr.Switch_on_structure _ -> deref @ [ rd Heap ]
  (* cut *)
  | Instr.Neck_cut -> [ rd Choice_point ]
  | Instr.Get_level _ -> [ wr Env_pvar ]
  | Instr.Cut_to _ -> [ rd Env_pvar; rd Choice_point ]
  (* escapes *)
  | Instr.Builtin (b, _) -> builtin b
  | Instr.Builtin_nt (b, _) ->
    (* certified-unconditional bindings: the trail write is elided *)
    List.filter (fun a -> a.area <> Trail) (builtin b)
  (* binding-certified specializations: no deref reads ([_r]/[_u] skip
     the Ref chase), and the [_u] binds skip the trail write *)
  | Instr.Get_structure_r _ -> [ rd Heap ]
  | Instr.Get_list_r _ -> []
  | Instr.Get_value_r (r, _) ->
    (* the elision is the argument's deref loop; the unification that
       follows can still bind (and trail) subterm variables *)
    if ctx.ground r then get_reg r @ deref @ pdl @ [ rd Heap ]
    else get_reg r @ unify_full
  | Instr.Get_structure_u _ | Instr.Get_list_u _ ->
    [ wr Heap; wr Env_pvar ]
  | Instr.Get_constant_u _ | Instr.Get_integer_u _ | Instr.Get_nil_u _ ->
    [ wr Heap; wr Env_pvar ]
  | Instr.Put_uninit _ ->
    (* the dead self-reference init is an untraced store *)
    []
  | Instr.Get_value_u (r, _) ->
    (* full unification, certified-unconditional bindings: the trail
       write is elided *)
    List.filter
      (fun a -> a.area <> Trail)
      (if ctx.ground r then get_reg r @ deref @ pdl @ [ rd Heap ]
       else get_reg r @ unify_full)
  (* parallel extensions *)
  | Instr.Check_ground (r, _) -> get_reg r @ deref @ [ rd Heap ]
  | Instr.Check_indep (r1, r2, _) ->
    get_reg r1 @ get_reg r2 @ deref @ [ rd Heap ]
  | Instr.Check_size (r, _, _) -> get_reg r @ deref @ [ rd Heap ]
  | Instr.Alloc_parcall _ ->
    [ wr Parcall_local; wr Parcall_count; wr Parcall_global ]
  | Instr.Push_goal _ -> [ rd Goal_frame; wr Goal_frame ]
  | Instr.Par_join ->
    (* commit/confirmation reads, locked counter updates, slot words,
       recovery state, local-goal pops and check-ins *)
    [
      rd Parcall_count; wr Parcall_count; rd Parcall_global;
      wr Parcall_global; rd Parcall_local; rd Goal_frame; wr Goal_frame;
    ]
  | Instr.Goal_done ->
    [
      rd Parcall_count; wr Parcall_count; rd Parcall_global;
      wr Parcall_global; rd Marker;
    ]

let may_fail (i : Instr.t) =
  match i with
  | Instr.Get_value _ | Instr.Get_constant _ | Instr.Get_integer _
  | Instr.Get_nil _ | Instr.Get_structure _ | Instr.Get_list _
  | Instr.Unify_value _ | Instr.Unify_local_value _ | Instr.Unify_constant _
  | Instr.Unify_integer _ | Instr.Unify_nil | Instr.Switch_on_term _
  | Instr.Switch_on_constant _ | Instr.Switch_on_integer _
  | Instr.Switch_on_structure _ | Instr.Par_join
  | Instr.Get_structure_r _ | Instr.Get_list_r _ | Instr.Get_value_r _
  | Instr.Get_structure_u _ | Instr.Get_list_u _ | Instr.Get_constant_u _
  | Instr.Get_integer_u _ | Instr.Get_nil_u _ | Instr.Get_value_u _ ->
    true
  | Instr.Builtin (b, _) | Instr.Builtin_nt (b, _) -> begin
    match b with
    | Builtin.True_b | Builtin.Write_t | Builtin.Print_t | Builtin.Nl
    | Builtin.Halt_b ->
      false
    | _ -> true
  end
  | _ -> false

(* The failure path restores registers from the current choice point
   and replays the trail, resetting trailed heap and local-stack cells
   through the same write-through accesses that bound them.

   In a parallel program the attribution window extends further: a
   goal failing inside a stack section checks in on the parcall frame
   and restores through its input marker before the PE fetches again,
   and the subsequent steal attempt (goal-stack probes, marker push,
   slot claim) still charges the failed predicate.  All of that lands
   in the footprint of whichever predicate's instruction failed. *)
let failure ~parallel =
  let base = [ rd Choice_point; rd Trail; wr Heap; wr Env_pvar ] in
  if not parallel then base
  else
    base
    @ [
        rd Marker; wr Marker; rd Parcall_count; wr Parcall_count;
        rd Parcall_global; wr Parcall_global; rd Goal_frame; wr Goal_frame;
      ]
