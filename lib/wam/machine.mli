(** Machine state: one shared memory plus per-worker (PE) register
    sets and stack-set pointers.

    Each worker owns the stack set carved out of its region by
    {!Layout}.  The X registers are processor registers: accessing
    them generates no memory traffic.  [-1] means "none" for [e], [b],
    [pf] and barriers. *)

type status =
  | Idle  (** no work assigned; may steal *)
  | Running
  | Waiting  (** blocked at a par_join *)
  | Halted

(** Cached mirror of an in-memory input marker. *)
type goal_ctx = {
  marker_addr : int;
  barrier_b : int;
  floor_cst : int;
  floor_lst : int;
  parcall : int;
  slot : int;
}

(** Entries of the worker's execution-context stack, in LIFO order:
    a pending (un-joined) parcall, a goal the parent runs as a plain
    call, or a stolen goal running under a marker.  A total failure
    (No_more_choices) dispatches on the top entry. *)
type exec_entry =
  | Parcall_pending of int
  | Local_goal of { parcall : int; slot : int; resume : int; entry_b : int }
  | Section_ctx of goal_ctx

(** Worker-private shallow frame for determinacy-certified chains
    (det_try/det_retry/det_trust): the register snapshot needed to
    retry the next alternative plus an undo log of bound addresses
    that predate the frame.  No choice-point-area words are written
    and nothing is trailed until the clause commits. *)
type shallow = {
  mutable sh_active : bool;
  mutable sh_alt : int;  (** code address of the next alternative *)
  mutable sh_nargs : int;
  sh_args : int array;  (** saved A1..An *)
  mutable sh_e : int;
  mutable sh_cp : int;
  mutable sh_b0 : int;
  mutable sh_h : int;
  mutable sh_lst : int;
  mutable sh_log : int list;  (** bound addresses predating the frame *)
  mutable sh_nt_log : int list;
      (** addresses bound by trail-elided (_u / builtin_nt) writes
          under this frame: restored on a shallow retry, dropped at
          commit (the elision's certificate says nothing older needs
          them trailed) *)
}

type worker = {
  id : int;
  shallow : shallow;
  mutable p : int;  (** program counter (code index) *)
  mutable cp : int;  (** continuation *)
  mutable e : int;  (** current environment *)
  mutable b : int;  (** newest choice point *)
  mutable b0 : int;  (** cut barrier at last call *)
  mutable h : int;  (** heap top *)
  mutable hb : int;  (** heap backtrack point (trail condition) *)
  mutable s : int;  (** structure pointer (read mode) *)
  mutable tr : int;  (** trail top *)
  mutable pdl : int;  (** unification PDL top *)
  mutable lst : int;  (** local stack top *)
  mutable cst : int;  (** control stack top *)
  mutable prot_lst : int;  (** local-stack floor protected by live CPs *)
  mutable gs_top : int;  (** goal stack: next free word *)
  mutable gs_bot : int;  (** goal stack: oldest live frame *)
  mutable mode_write : bool;
  mutable no_trail : bool;
      (** set for the duration of a [builtin_nt] escape: [bind] skips
          trailing (logging to [sh_nt_log] under a shallow frame) *)
  x : int array;  (** X/A registers (1-based use) *)
  mutable nargs : int;
  mutable status : status;
  mutable exec_stack : exec_entry list;
  mutable barrier : int;  (** backtracking floor of the current context *)
  mutable cst_floor : int;
  mutable lst_floor : int;
  mutable pf : int;  (** current parcall frame *)
  mutable par_hb : int;
      (** heap floor imposed by the innermost live parcall frame:
          bindings to older cells must stay trailed for the recovery
          untrail, whatever choice-point pops restore HB to *)
  mutable par_prot : int;  (** local-stack floor, same role *)
  mutable failing_pf : int;  (** parcall whose unwind is in progress *)
  mutable sections : (int * int * int * int) list;
      (** completed sections: (pf, slot, trail start, trail end) *)
  mutable instr_count : int;
  mutable idle_cycles : int;
  mutable wait_cycles : int;
  mutable max_h : int;
  mutable max_lst : int;
  mutable max_cst : int;
  mutable max_tr : int;
  mutable max_gs : int;
}

type t = {
  mem : Memory.t;
  code : Code.t;
  symbols : Symbols.t;
  workers : worker array;
  opcode_freq : int array;
  mutable steps : int;
  mutable inferences : int;
  mutable parcalls : int;
  mutable goals_pushed : int;
  mutable goals_stolen : int;
  mutable cp_created : int;  (** choice points pushed (try) *)
  mutable cp_elided : int;  (** certified chains entered shallow (det_try) *)
  mutable trail_elided : int;
      (** trail tests+writes skipped by binding-certified code
          (_u gets, builtin_nt) *)
  mutable deref_skipped : int;
      (** deref loops skipped by rigid/uninit-certified reads *)
  mutable halted : bool;
  mutable failed : bool;
  out : Format.formatter;  (** for write/1, nl/0 *)
  nil_atom : int;
}

exception Runtime_error of string

val runtime_error : ('a, unit, string, 'b) format4 -> 'a
(** @raise Runtime_error always. *)

val make_worker : int -> worker

val create :
  ?out:Format.formatter -> ?sink:Trace.Sink.t -> n_workers:int ->
  code:Code.t -> symbols:Symbols.t -> unit -> t

val n_workers : t -> int
val worker : t -> int -> worker
val total_instr : t -> int

val note_high_water : worker -> unit

(** {1 Storage high-water marks, words} *)

val heap_used : worker -> int
val local_used : worker -> int
val control_used : worker -> int
val trail_used : worker -> int
