(* The WAM execution core: dereferencing, binding, trailing,
   unification, arithmetic, builtins, backtracking and the sequential
   instruction semantics.

   All memory accesses go through [Memory] and are traced.  The
   parallel instructions (alloc_parcall, push_goal, par_join,
   goal_done) are not handled here; the RAP-WAM simulator intercepts
   them before delegating to [step_core].

   Choice-point frame layout (base B, n = saved arity):
     B+0          nargs
     B+1..B+n     argument registers
     B+n+1..n+8   e, cp, prev_b, next_alt, tr, h, b0, saved_lst
   Total size n+9 words, all tagged Choice_point.  (HB and the
   local-stack protection for the previous choice point are re-read
   from that frame when a trust pops this one, saving two words per
   frame in the common cut/commit case.) *)

open Machine

exception No_more_choices of worker
(* Raised by [fail] when backtracking reaches the execution barrier:
   query failure for the root context, goal failure inside a parallel
   goal. *)

let cp_extra = 9

(* ------------------------------------------------------------------ *)
(* Memory access helpers (pe = issuing worker).                       *)

let rd m (w : worker) ~area addr = Memory.read m.mem ~pe:w.id ~area addr
let wr m (w : worker) ~area addr cell = Memory.write m.mem ~pe:w.id ~area addr cell
let rd_auto m (w : worker) addr = Memory.read_auto m.mem ~pe:w.id addr
let wr_auto m (w : worker) addr cell = Memory.write_auto m.mem ~pe:w.id addr cell

let fetch_traced m (w : worker) =
  (* Instruction fetch: one code-region read. *)
  m.mem.Memory.sink.Trace.Sink.emit
    {
      Trace.Ref_record.pe = w.id;
      addr = Code.trace_addr w.p;
      area = Trace.Area.Code;
      op = Trace.Ref_record.Read;
    };
  Code.fetch m.code w.p

(* ------------------------------------------------------------------ *)
(* Dereferencing, trailing, binding.                                  *)

let rec deref m w cell =
  if Cell.is_ref cell then begin
    let a = Cell.payload cell in
    let v = rd_auto m w a in
    if v = cell then cell else deref m w v
  end
  else cell

let trail_push m (w : worker) addr =
  if w.tr >= Layout.trail_limit w.id then
    runtime_error "trail overflow (PE %d)" w.id;
  wr m w ~area:Trace.Area.Trail w.tr (Cell.raw addr);
  w.tr <- w.tr + 1;
  if w.tr > w.max_tr then w.max_tr <- w.tr

(* Trail condition: bindings to this worker's own cells younger than
   the newest choice point (heap above HB, local stack above the
   protection floor) need no trail entry; everything else -- older
   cells and every cross-PE binding -- is trailed. *)
let must_trail (w : worker) addr =
  if Layout.pe_of_addr addr <> w.id then true
  else if Layout.is_heap_addr addr then addr < w.hb
  else if Layout.is_local_stack_addr addr then addr < w.prot_lst
  else true

(* Shallow analogue of the trail condition, against the shallow
   frame's snapshot instead of the newest choice point: bindings to
   cells that predate the frame must be logged so a shallow fail can
   restore them.  [sh_h >= hb] and [sh_lst >= prot_lst] always hold,
   so the log is a superset of what the trail would have recorded. *)
let shallow_protects (w : worker) addr =
  let sh = w.shallow in
  if Layout.pe_of_addr addr <> w.id then true
  else if Layout.is_heap_addr addr then addr < sh.sh_h
  else if Layout.is_local_stack_addr addr then addr < sh.sh_lst
  else true

(* Unconditional bind (lib/bindan): the certificate says no live
   choice point or parcall trail floor predates [addr], so the trail
   test and write are skipped.  Under an active shallow frame the
   address still goes to the frame's restore log (a shallow retry must
   undo the write), but to [sh_nt_log], which commit DROPS instead of
   flushing — the flush is exactly the trail write the certificate
   deletes. *)
let bind_nt m (w : worker) addr cell =
  wr_auto m w addr cell;
  m.trail_elided <- m.trail_elided + 1;
  if w.shallow.sh_active && shallow_protects w addr then
    w.shallow.sh_nt_log <- addr :: w.shallow.sh_nt_log

let bind m w addr cell =
  if w.no_trail then bind_nt m w addr cell
  else begin
    wr_auto m w addr cell;
    if w.shallow.sh_active then begin
      if shallow_protects w addr then
        w.shallow.sh_log <- addr :: w.shallow.sh_log
    end
    else if must_trail w addr then trail_push m w addr
  end

(* Bind two unbound variables: stack variables point at heap variables
   (stack cells die first); between same-kind cells the younger (higher
   address) points at the older. *)
let bind_vars m w a1 a2 =
  let s1 = Layout.is_local_stack_addr a1 in
  let s2 = Layout.is_local_stack_addr a2 in
  if s1 && not s2 then bind m w a1 (Cell.ref_ a2)
  else if s2 && not s1 then bind m w a2 (Cell.ref_ a1)
  else if a1 < a2 then bind m w a2 (Cell.ref_ a1)
  else bind m w a1 (Cell.ref_ a2)

(* ------------------------------------------------------------------ *)
(* Heap allocation.                                                   *)

let hpush m (w : worker) cell =
  if w.h >= Layout.heap_limit w.id then
    runtime_error "heap overflow (PE %d)" w.id;
  wr m w ~area:Trace.Area.Heap w.h cell;
  let a = w.h in
  w.h <- w.h + 1;
  if w.h > w.max_h then w.max_h <- w.h;
  a

let fresh_heap_var m w =
  let a = w.h in
  ignore (hpush m w (Cell.ref_ a));
  a

(* ------------------------------------------------------------------ *)
(* Unification (PDL-based).                                           *)

let pdl_push m (w : worker) c1 c2 =
  if w.pdl + 2 > Layout.pdl_limit w.id then
    runtime_error "PDL overflow (PE %d)" w.id;
  wr m w ~area:Trace.Area.Pdl w.pdl c1;
  wr m w ~area:Trace.Area.Pdl (w.pdl + 1) c2;
  w.pdl <- w.pdl + 2

let pdl_pop m (w : worker) =
  w.pdl <- w.pdl - 2;
  let c1 = rd m w ~area:Trace.Area.Pdl w.pdl in
  let c2 = rd m w ~area:Trace.Area.Pdl (w.pdl + 1) in
  (c1, c2)

(* General unification.  The current pair is kept in registers (as in
   real WAM implementations); the PDL holds only the extra sub-pairs of
   compound terms, so trivial unifications generate no PDL traffic. *)
let unify m (w : worker) c1 c2 =
  let base = w.pdl in
  let rec next ok =
    if not ok then begin
      w.pdl <- base;
      false
    end
    else if w.pdl = base then true
    else begin
      let c1, c2 = pdl_pop m w in
      pair c1 c2
    end
  and pair c1 c2 =
    let d1 = deref m w c1 in
    let d2 = deref m w c2 in
    if d1 = d2 then next true
    else begin
      match (Cell.view d1, Cell.view d2) with
      | Cell.Ref a1, Cell.Ref a2 ->
        bind_vars m w a1 a2;
        next true
      | ( Cell.Ref a,
          ( Cell.Str _ | Cell.Lis _ | Cell.Con _ | Cell.Num _ | Cell.Fun _
          | Cell.Raw _ ) ) ->
        bind m w a d2;
        next true
      | ( ( Cell.Str _ | Cell.Lis _ | Cell.Con _ | Cell.Num _ | Cell.Fun _
          | Cell.Raw _ ),
          Cell.Ref a ) ->
        bind m w a d1;
        next true
      | Cell.Lis a1, Cell.Lis a2 ->
        (* tails go to the PDL; continue with the heads *)
        pdl_push m w (rd_auto m w (a1 + 1)) (rd_auto m w (a2 + 1));
        pair (rd_auto m w a1) (rd_auto m w a2)
      | Cell.Str a1, Cell.Str a2 ->
        let f1 = rd_auto m w a1 in
        let f2 = rd_auto m w a2 in
        if f1 <> f2 then next false
        else begin
          let arity = Symbols.functor_arity m.symbols (Cell.payload f1) in
          if arity = 0 then next true
          else begin
            for i = 2 to arity do
              pdl_push m w (rd_auto m w (a1 + i)) (rd_auto m w (a2 + i))
            done;
            pair (rd_auto m w (a1 + 1)) (rd_auto m w (a2 + 1))
          end
        end
      | ( ( Cell.Str _ | Cell.Lis _ | Cell.Con _ | Cell.Num _ | Cell.Fun _
          | Cell.Raw _ ),
          _ ) ->
        next false
    end
  in
  pair c1 c2

(* ------------------------------------------------------------------ *)
(* Backtracking.                                                      *)

let untrail_to m (w : worker) saved_tr =
  while w.tr > saved_tr do
    w.tr <- w.tr - 1;
    let entry = rd m w ~area:Trace.Area.Trail w.tr in
    let a = Cell.payload entry in
    wr_auto m w a (Cell.ref_ a)
  done

(* Shallow fail: restore the register snapshot, reset the logged
   bindings to unbound and continue at the frame's next alternative.
   No choice-point words are read, nothing was trailed, and the frame
   stays active for the rest of the chain (the det_retry/det_trust at
   [sh_alt] updates or deactivates it). *)
let shallow_fail m (w : worker) =
  let sh = w.shallow in
  List.iter (fun a -> wr_auto m w a (Cell.ref_ a)) sh.sh_log;
  sh.sh_log <- [];
  List.iter (fun a -> wr_auto m w a (Cell.ref_ a)) sh.sh_nt_log;
  sh.sh_nt_log <- [];
  let n = sh.sh_nargs in
  for i = 1 to n do
    w.x.(i) <- sh.sh_args.(i)
  done;
  w.nargs <- n;
  w.e <- sh.sh_e;
  w.cp <- sh.sh_cp;
  w.b0 <- sh.sh_b0;
  w.h <- sh.sh_h;
  w.lst <- sh.sh_lst;
  w.p <- sh.sh_alt

(* Commit: the certified clause's test prefix has succeeded, so the
   shallow frame is dead.  Log entries the real trail condition cares
   about are flushed to the trail (the rest would not have been
   trailed by a plain chain either). *)
let commit_shallow m (w : worker) =
  let sh = w.shallow in
  sh.sh_active <- false;
  List.iter (fun a -> if must_trail w a then trail_push m w a) sh.sh_log;
  sh.sh_log <- [];
  (* trail-elided bindings survive the commit untrailed: that is the
     reference the certificate deletes *)
  sh.sh_nt_log <- []

(* Instructions that end a certified clause's test prefix.  Builtins
   deliberately do not commit: arithmetic guards stay inside the
   shallow window so their failure retries the next alternative. *)
let commits = function
  | Instr.Call _ | Instr.Execute _ | Instr.Proceed | Instr.Halt_ok
  | Instr.Neck_cut | Instr.Cut_to _ | Instr.Alloc_parcall _
  | Instr.Push_goal _ | Instr.Par_join | Instr.Goal_done ->
    true
  | Instr.Put_variable _ | Instr.Put_value _ | Instr.Put_unsafe_value _
  | Instr.Put_constant _ | Instr.Put_integer _ | Instr.Put_nil _
  | Instr.Put_structure _ | Instr.Put_list _ | Instr.Get_variable _
  | Instr.Get_value _ | Instr.Get_constant _ | Instr.Get_integer _
  | Instr.Get_nil _ | Instr.Get_structure _ | Instr.Get_list _
  | Instr.Unify_variable _ | Instr.Unify_value _ | Instr.Unify_local_value _
  | Instr.Unify_constant _ | Instr.Unify_integer _ | Instr.Unify_nil
  | Instr.Unify_void _ | Instr.Allocate _ | Instr.Deallocate | Instr.Jump _
  | Instr.Try _ | Instr.Retry _ | Instr.Trust _ | Instr.Det_try _
  | Instr.Det_retry _ | Instr.Det_trust _ | Instr.Switch_on_term _
  | Instr.Switch_on_constant _ | Instr.Switch_on_integer _
  | Instr.Switch_on_structure _ | Instr.Get_level _ | Instr.Builtin _
  | Instr.Check_ground _ | Instr.Check_indep _ | Instr.Check_size _
  | Instr.Get_structure_r _ | Instr.Get_list_r _ | Instr.Get_value_r _
  | Instr.Get_structure_u _ | Instr.Get_list_u _ | Instr.Get_constant_u _
  | Instr.Get_integer_u _ | Instr.Get_nil_u _ | Instr.Builtin_nt _
  | Instr.Put_uninit _ | Instr.Get_value_u _ ->
    false

let maybe_commit m (w : worker) instr =
  if w.shallow.sh_active && commits instr then commit_shallow m w

(* Abandon an active shallow frame without running its alternatives,
   restoring the logged bindings.  Used by the simulator when a goal
   context is torn down. *)
let abandon_shallow m (w : worker) =
  let sh = w.shallow in
  if sh.sh_active then begin
    List.iter (fun a -> wr_auto m w a (Cell.ref_ a)) sh.sh_log;
    sh.sh_log <- [];
    List.iter (fun a -> wr_auto m w a (Cell.ref_ a)) sh.sh_nt_log;
    sh.sh_nt_log <- [];
    sh.sh_active <- false
  end

let fail m (w : worker) =
  if w.shallow.sh_active then shallow_fail m w
  else if w.b = -1 || w.b <= w.barrier then raise (No_more_choices w)
  else begin
    let b = w.b in
    let f off = rd m w ~area:Trace.Area.Choice_point (b + off) in
    let n = Cell.payload (f 0) in
    for i = 1 to n do
      w.x.(i) <- f i
    done;
    w.nargs <- n;
    w.e <- Cell.payload (f (n + 1));
    w.cp <- Cell.payload (f (n + 2));
    let next_alt = Cell.payload (f (n + 4)) in
    untrail_to m w (Cell.payload (f (n + 5)));
    let saved_h = Cell.payload (f (n + 6)) in
    w.h <- saved_h;
    w.hb <- max saved_h w.par_hb;
    w.b0 <- Cell.payload (f (n + 7));
    let saved_lst = Cell.payload (f (n + 8)) in
    w.lst <- saved_lst;
    w.prot_lst <- max saved_lst w.par_prot;
    w.cst <- b + n + cp_extra;
    w.p <- next_alt
  end

(* ------------------------------------------------------------------ *)
(* Registers.                                                         *)

let get_reg m (w : worker) = function
  | Instr.X n -> w.x.(n)
  | Instr.Y n -> rd m w ~area:Trace.Area.Env_pvar (w.e + 3 + n)

let set_reg m (w : worker) r cell =
  match r with
  | Instr.X n -> w.x.(n) <- cell
  | Instr.Y n -> wr m w ~area:Trace.Area.Env_pvar (w.e + 3 + n) cell

(* ------------------------------------------------------------------ *)
(* Term predicates and arithmetic.                                    *)

let functor_cell m w addr =
  match Cell.view (rd_auto m w addr) with
  | Cell.Fun fid -> fid
  | Cell.Ref _ | Cell.Str _ | Cell.Lis _ | Cell.Con _ | Cell.Num _
  | Cell.Raw _ ->
    runtime_error "corrupt structure at address %d" addr

let rec is_ground m w cell =
  match Cell.view (deref m w cell) with
  | Cell.Ref _ -> false
  | Cell.Con _ | Cell.Num _ -> true
  | Cell.Lis a ->
    is_ground m w (rd_auto m w a) && is_ground m w (rd_auto m w (a + 1))
  | Cell.Str a ->
    let fid = functor_cell m w a in
    let arity = Symbols.functor_arity m.symbols fid in
    let rec go i =
      i > arity || (is_ground m w (rd_auto m w (a + i)) && go (i + 1))
    in
    go 1
  | Cell.Fun _ | Cell.Raw _ -> runtime_error "is_ground: raw cell"

(* Collect the addresses of the unbound variables of a term. *)
let collect_vars m w cell tbl =
  let rec go cell =
    match Cell.view (deref m w cell) with
    | Cell.Ref a -> Hashtbl.replace tbl a ()
    | Cell.Con _ | Cell.Num _ -> ()
    | Cell.Lis a ->
      go (rd_auto m w a);
      go (rd_auto m w (a + 1))
    | Cell.Str a ->
      let fid = functor_cell m w a in
      for i = 1 to Symbols.functor_arity m.symbols fid do
        go (rd_auto m w (a + i))
      done
    | Cell.Fun _ | Cell.Raw _ -> runtime_error "collect_vars: raw cell"
  in
  go cell

(* Goal independence: the two terms share no unbound variable. *)
let independent m w c1 c2 =
  let tbl = Hashtbl.create 16 in
  collect_vars m w c1 tbl;
  let shared = ref false in
  let rec go cell =
    if not !shared then begin
      match Cell.view (deref m w cell) with
      | Cell.Ref a -> if Hashtbl.mem tbl a then shared := true
      | Cell.Con _ | Cell.Num _ -> ()
      | Cell.Lis a ->
        go (rd_auto m w a);
        go (rd_auto m w (a + 1))
      | Cell.Str a ->
        let fid = functor_cell m w a in
        for i = 1 to Symbols.functor_arity m.symbols fid do
          go (rd_auto m w (a + i))
        done
      | Cell.Fun _ | Cell.Raw _ -> runtime_error "independent: raw cell"
    end
  in
  go c2;
  not !shared

(* Bounded term-size walk for the granularity guard (counting as
   Prolog.Term.size: one per node).  Only whether the size reaches [k]
   matters, so the walk touches at most [k] nodes. *)
let size_at_least m w cell k =
  let count = ref 0 in
  let exception Enough in
  let rec go cell =
    incr count;
    if !count >= k then raise Enough;
    match Cell.view (deref m w cell) with
    | Cell.Ref _ | Cell.Con _ | Cell.Num _ -> ()
    | Cell.Lis a ->
      go (rd_auto m w a);
      go (rd_auto m w (a + 1))
    | Cell.Str a ->
      let fid = functor_cell m w a in
      for i = 1 to Symbols.functor_arity m.symbols fid do
        go (rd_auto m w (a + i))
      done
    | Cell.Fun _ | Cell.Raw _ -> runtime_error "size_at_least: raw cell"
  in
  k <= 0
  ||
  (try
     go cell;
     false
   with Enough -> true)

(* Standard order: Var < Num < Atom < Compound. *)
let rec compare_terms m w c1 c2 =
  let d1 = deref m w c1 in
  let d2 = deref m w c2 in
  if d1 = d2 then 0
  else begin
    let rank c =
      match Cell.view c with
      | Cell.Ref _ -> 0
      | Cell.Num _ -> 1
      | Cell.Con _ -> 2
      | Cell.Lis _ | Cell.Str _ -> 3
      | Cell.Fun _ | Cell.Raw _ -> runtime_error "compare: raw cell"
    in
    let r1 = rank d1 and r2 = rank d2 in
    if r1 <> r2 then compare r1 r2
    else begin
      match (Cell.view d1, Cell.view d2) with
      | Cell.Ref a1, Cell.Ref a2 -> compare a1 a2
      | Cell.Num n1, Cell.Num n2 -> compare n1 n2
      | Cell.Con a1, Cell.Con a2 ->
        compare (Symbols.atom_name m.symbols a1) (Symbols.atom_name m.symbols a2)
      | (Cell.Lis _ | Cell.Str _), (Cell.Lis _ | Cell.Str _) ->
        let spec c =
          match Cell.view c with
          | Cell.Lis a -> (2, ".", a, true)
          | Cell.Str a ->
            let fid = functor_cell m w a in
            ( Symbols.functor_arity m.symbols fid,
              Symbols.functor_name m.symbols fid,
              a,
              false )
          | Cell.Ref _ | Cell.Con _ | Cell.Num _ | Cell.Fun _ | Cell.Raw _ ->
            assert false
        in
        let n1, f1, a1, l1 = spec d1 in
        let n2, f2, a2, l2 = spec d2 in
        if n1 <> n2 then compare n1 n2
        else if f1 <> f2 then compare f1 f2
        else begin
          (* argument base: list pairs start at a, structures at a+1 *)
          let base1 = if l1 then a1 - 1 else a1 in
          let base2 = if l2 then a2 - 1 else a2 in
          let rec args i =
            if i > n1 then 0
            else begin
              let c =
                compare_terms m w
                  (rd_auto m w (base1 + i))
                  (rd_auto m w (base2 + i))
              in
              if c <> 0 then c else args (i + 1)
            end
          in
          args 1
        end
      | ( ( Cell.Ref _ | Cell.Num _ | Cell.Con _ | Cell.Lis _ | Cell.Str _
          | Cell.Fun _ | Cell.Raw _ ),
          _ ) ->
        assert false
    end
  end

let rec eval_arith m w cell =
  match Cell.view (deref m w cell) with
  | Cell.Num n -> n
  | Cell.Str a -> begin
    let fid = functor_cell m w a in
    let name = Symbols.functor_name m.symbols fid in
    let arity = Symbols.functor_arity m.symbols fid in
    let arg i = eval_arith m w (rd_auto m w (a + i)) in
    match (name, arity) with
    | "+", 2 -> arg 1 + arg 2
    | "-", 2 -> arg 1 - arg 2
    | "*", 2 -> arg 1 * arg 2
    | "//", 2 | "/", 2 ->
      let d = arg 2 in
      if d = 0 then runtime_error "zero divisor" else arg 1 / d
    | "mod", 2 ->
      let d = arg 2 in
      if d = 0 then runtime_error "zero divisor"
      else begin
        let r = arg 1 mod d in
        if (r < 0 && d > 0) || (r > 0 && d < 0) then r + d else r
      end
    | "rem", 2 -> arg 1 mod arg 2
    | "min", 2 -> min (arg 1) (arg 2)
    | "max", 2 -> max (arg 1) (arg 2)
    | ">>", 2 -> arg 1 asr arg 2
    | "<<", 2 -> arg 1 lsl arg 2
    | "/\\", 2 -> arg 1 land arg 2
    | "\\/", 2 -> arg 1 lor arg 2
    | "-", 1 -> -arg 1
    | "+", 1 -> arg 1
    | "abs", 1 -> abs (arg 1)
    | "sign", 1 -> compare (arg 1) 0
    | _, _ -> runtime_error "not evaluable: %s/%d" name arity
  end
  | Cell.Con c ->
    runtime_error "not evaluable: %s/0" (Symbols.atom_name m.symbols c)
  | Cell.Ref _ -> runtime_error "is/2: argument insufficiently instantiated"
  | Cell.Lis _ -> runtime_error "is/2: list is not evaluable"
  | Cell.Fun _ | Cell.Raw _ -> runtime_error "eval: raw cell"

(* ------------------------------------------------------------------ *)
(* Answer decoding (untraced; used by write/1 and the drivers).       *)

let rec decode m w cell =
  let cell =
    (* untraced deref *)
    let rec go c =
      if Cell.is_ref c then begin
        let v = Memory.peek m.mem (Cell.payload c) in
        if v = c then c else go v
      end
      else c
    in
    go cell
  in
  match Cell.view cell with
  | Cell.Ref a -> Prolog.Term.Var (Printf.sprintf "_%d" a)
  | Cell.Num n -> Prolog.Term.Int n
  | Cell.Con c -> Prolog.Term.Atom (Symbols.atom_name m.symbols c)
  | Cell.Lis a ->
    Prolog.Term.Struct
      ( ".",
        [ decode m w (Memory.peek m.mem a); decode m w (Memory.peek m.mem (a + 1)) ] )
  | Cell.Str a -> begin
    match Cell.view (Memory.peek m.mem a) with
    | Cell.Fun fid ->
      let name = Symbols.functor_name m.symbols fid in
      let arity = Symbols.functor_arity m.symbols fid in
      Prolog.Term.Struct
        (name, List.init arity (fun i -> decode m w (Memory.peek m.mem (a + 1 + i))))
    | Cell.Ref _ | Cell.Str _ | Cell.Lis _ | Cell.Con _ | Cell.Num _
    | Cell.Raw _ ->
      runtime_error "decode: corrupt structure"
  end
  | Cell.Fun _ | Cell.Raw _ -> runtime_error "decode: raw cell"

(* Encode a ground-or-variable source term onto a worker's heap;
   variables share bindings through [env] (name -> heap address). *)
let rec encode m w env t =
  match t with
  | Prolog.Term.Int n -> Cell.num n
  | Prolog.Term.Atom a -> Cell.con (Symbols.atom m.symbols a)
  | Prolog.Term.Var v -> begin
    match Hashtbl.find_opt env v with
    | Some a -> Cell.ref_ a
    | None ->
      let a = fresh_heap_var m w in
      Hashtbl.add env v a;
      Cell.ref_ a
  end
  | Prolog.Term.Struct (".", [ hd; tl ]) ->
    let c_hd = encode m w env hd in
    let c_tl = encode m w env tl in
    let a = hpush m w c_hd in
    ignore (hpush m w c_tl);
    Cell.lis a
  | Prolog.Term.Struct (f, args) ->
    let cells = List.map (encode m w env) args in
    let fid = Symbols.functor_ m.symbols f (List.length args) in
    let a = hpush m w (Cell.fun_ fid) in
    List.iter (fun c -> ignore (hpush m w c)) cells;
    Cell.str a

(* ------------------------------------------------------------------ *)
(* Builtins.  Each returns [true] on success; [false] triggers fail.  *)

let list_of_cells m w cells =
  let nil = Cell.con m.nil_atom in
  List.fold_right
    (fun c acc ->
      let a = hpush m w c in
      ignore (hpush m w acc);
      Cell.lis a)
    cells nil

let exec_builtin m (w : worker) b _arity =
  let a i = w.x.(i) in
  match b with
  | Builtin.True_b -> true
  | Builtin.Fail_b -> false
  | Builtin.Unify -> unify m w (a 1) (a 2)
  | Builtin.Is ->
    let v = eval_arith m w (a 2) in
    unify m w (a 1) (Cell.num v)
  | Builtin.Lt -> eval_arith m w (a 1) < eval_arith m w (a 2)
  | Builtin.Gt -> eval_arith m w (a 1) > eval_arith m w (a 2)
  | Builtin.Le -> eval_arith m w (a 1) <= eval_arith m w (a 2)
  | Builtin.Ge -> eval_arith m w (a 1) >= eval_arith m w (a 2)
  | Builtin.Arith_eq -> eval_arith m w (a 1) = eval_arith m w (a 2)
  | Builtin.Arith_ne -> eval_arith m w (a 1) <> eval_arith m w (a 2)
  | Builtin.Not_unify ->
    (* Trial unification with full trailing, then undo.  Under an
       active shallow frame the trial bindings land in the frame's
       undo log instead of the trail, so mark the log (and tighten the
       snapshot so every binding is logged), undo past the mark, and
       restore. *)
    let saved_hb = w.hb in
    let saved_tr = w.tr in
    let sh = w.shallow in
    let saved_log = sh.sh_log in
    let saved_sh_h = sh.sh_h in
    let saved_sh_lst = sh.sh_lst in
    if sh.sh_active then begin
      sh.sh_h <- w.h;
      sh.sh_lst <- w.lst
    end;
    w.hb <- w.h;
    let ok = unify m w (a 1) (a 2) in
    if sh.sh_active then begin
      let rec undo log =
        if log != saved_log then
          match log with
          | addr :: rest ->
            wr_auto m w addr (Cell.ref_ addr);
            undo rest
          | [] -> ()
      in
      undo sh.sh_log;
      sh.sh_log <- saved_log;
      sh.sh_h <- saved_sh_h;
      sh.sh_lst <- saved_sh_lst
    end;
    untrail_to m w saved_tr;
    w.hb <- saved_hb;
    not ok
  | Builtin.Term_eq -> compare_terms m w (a 1) (a 2) = 0
  | Builtin.Term_ne -> compare_terms m w (a 1) (a 2) <> 0
  | Builtin.Term_lt -> compare_terms m w (a 1) (a 2) < 0
  | Builtin.Term_gt -> compare_terms m w (a 1) (a 2) > 0
  | Builtin.Term_le -> compare_terms m w (a 1) (a 2) <= 0
  | Builtin.Term_ge -> compare_terms m w (a 1) (a 2) >= 0
  | Builtin.Var_p -> Cell.is_ref (deref m w (a 1))
  | Builtin.Nonvar_p -> not (Cell.is_ref (deref m w (a 1)))
  | Builtin.Atom_p -> begin
    match Cell.view (deref m w (a 1)) with
    | Cell.Con _ -> true
    | Cell.Ref _ | Cell.Str _ | Cell.Lis _ | Cell.Num _ | Cell.Fun _
    | Cell.Raw _ ->
      false
  end
  | Builtin.Integer_p -> begin
    match Cell.view (deref m w (a 1)) with
    | Cell.Num _ -> true
    | Cell.Ref _ | Cell.Str _ | Cell.Lis _ | Cell.Con _ | Cell.Fun _
    | Cell.Raw _ ->
      false
  end
  | Builtin.Atomic_p -> begin
    match Cell.view (deref m w (a 1)) with
    | Cell.Con _ | Cell.Num _ -> true
    | Cell.Ref _ | Cell.Str _ | Cell.Lis _ | Cell.Fun _ | Cell.Raw _ -> false
  end
  | Builtin.Compound_p -> begin
    match Cell.view (deref m w (a 1)) with
    | Cell.Str _ | Cell.Lis _ -> true
    | Cell.Ref _ | Cell.Con _ | Cell.Num _ | Cell.Fun _ | Cell.Raw _ -> false
  end
  | Builtin.Ground_p -> is_ground m w (a 1)
  | Builtin.Indep_p -> independent m w (a 1) (a 2)
  | Builtin.Write_t | Builtin.Print_t ->
    Format.fprintf m.out "%a" (Prolog.Pretty.pp ?ops:None) (decode m w (a 1));
    true
  | Builtin.Nl ->
    Format.fprintf m.out "@.";
    true
  | Builtin.Halt_b ->
    m.halted <- true;
    w.status <- Halted;
    true
  | Builtin.Functor_b -> begin
    match Cell.view (deref m w (a 1)) with
    | Cell.Con c ->
      unify m w (a 2) (Cell.con c) && unify m w (a 3) (Cell.num 0)
    | Cell.Num n ->
      unify m w (a 2) (Cell.num n) && unify m w (a 3) (Cell.num 0)
    | Cell.Lis _ ->
      unify m w (a 2) (Cell.con (Symbols.atom m.symbols "."))
      && unify m w (a 3) (Cell.num 2)
    | Cell.Str addr ->
      let fid = functor_cell m w addr in
      let aid, arity = Symbols.functor_def m.symbols fid in
      unify m w (a 2) (Cell.con aid) && unify m w (a 3) (Cell.num arity)
    | Cell.Ref _ -> begin
      (* Construction mode. *)
      match (Cell.view (deref m w (a 2)), Cell.view (deref m w (a 3))) with
      | Cell.Con c, Cell.Num 0 -> unify m w (a 1) (Cell.con c)
      | Cell.Num n, Cell.Num 0 -> unify m w (a 1) (Cell.num n)
      | Cell.Con c, Cell.Num n when n > 0 ->
        let name = Symbols.atom_name m.symbols c in
        if name = "." && n = 2 then begin
          let addr = fresh_heap_var m w in
          ignore (fresh_heap_var m w);
          unify m w (a 1) (Cell.lis addr)
        end
        else begin
          let fid = Symbols.functor_ m.symbols name n in
          let addr = hpush m w (Cell.fun_ fid) in
          for _ = 1 to n do
            ignore (fresh_heap_var m w)
          done;
          unify m w (a 1) (Cell.str addr)
        end
      | _, _ -> runtime_error "functor/3: bad construction arguments"
    end
    | Cell.Fun _ | Cell.Raw _ -> runtime_error "functor/3: raw cell"
  end
  | Builtin.Arg_b -> begin
    match (Cell.view (deref m w (a 1)), Cell.view (deref m w (a 2))) with
    | Cell.Num n, Cell.Str addr ->
      let fid = functor_cell m w addr in
      let arity = Symbols.functor_arity m.symbols fid in
      if n >= 1 && n <= arity then
        unify m w (a 3) (rd_auto m w (addr + n))
      else false
    | Cell.Num n, Cell.Lis addr ->
      if n = 1 then unify m w (a 3) (rd_auto m w addr)
      else if n = 2 then unify m w (a 3) (rd_auto m w (addr + 1))
      else false
    | _, _ -> runtime_error "arg/3: bad arguments"
  end
  | Builtin.Univ -> begin
    match Cell.view (deref m w (a 1)) with
    | Cell.Con _ | Cell.Num _ ->
      unify m w (a 2) (list_of_cells m w [ deref m w (a 1) ])
    | Cell.Lis addr ->
      unify m w (a 2)
        (list_of_cells m w
           [
             Cell.con (Symbols.atom m.symbols ".");
             rd_auto m w addr;
             rd_auto m w (addr + 1);
           ])
    | Cell.Str addr ->
      let fid = functor_cell m w addr in
      let aid, arity = Symbols.functor_def m.symbols fid in
      let args = List.init arity (fun i -> rd_auto m w (addr + 1 + i)) in
      unify m w (a 2) (list_of_cells m w (Cell.con aid :: args))
    | Cell.Ref _ -> begin
      (* Construction: collect the list elements. *)
      let rec elements cell acc =
        match Cell.view (deref m w cell) with
        | Cell.Con c when c = m.nil_atom -> List.rev acc
        | Cell.Lis addr ->
          elements (rd_auto m w (addr + 1)) (rd_auto m w addr :: acc)
        | Cell.Ref _ | Cell.Str _ | Cell.Con _ | Cell.Num _ | Cell.Fun _
        | Cell.Raw _ ->
          runtime_error "=../2: second argument must be a proper list"
      in
      match elements (a 2) [] with
      | [] -> runtime_error "=../2: empty list"
      | [ single ] -> unify m w (a 1) (deref m w single)
      | head :: args -> begin
        match Cell.view (deref m w head) with
        | Cell.Con c ->
          let name = Symbols.atom_name m.symbols c in
          let n = List.length args in
          if name = "." && n = 2 then begin
            match args with
            | [ hd; tl ] ->
              let addr = hpush m w hd in
              ignore (hpush m w tl);
              unify m w (a 1) (Cell.lis addr)
            | _ -> assert false
          end
          else begin
            let fid = Symbols.functor_ m.symbols name n in
            let addr = hpush m w (Cell.fun_ fid) in
            List.iter (fun c -> ignore (hpush m w c)) args;
            unify m w (a 1) (Cell.str addr)
          end
        | Cell.Ref _ | Cell.Str _ | Cell.Lis _ | Cell.Num _ | Cell.Fun _
        | Cell.Raw _ ->
          runtime_error "=../2: list head must be an atom"
      end
    end
    | Cell.Fun _ | Cell.Raw _ -> runtime_error "=../2: raw cell"
  end

(* ------------------------------------------------------------------ *)
(* Choice points.                                                     *)

let push_choice_point m (w : worker) ~next_alt =
  let n = w.nargs in
  let base = w.cst in
  if base + n + cp_extra > Layout.control_limit w.id then
    runtime_error "control stack overflow (PE %d)" w.id;
  let cp_wr off cell = wr m w ~area:Trace.Area.Choice_point (base + off) cell in
  cp_wr 0 (Cell.raw n);
  for i = 1 to n do
    cp_wr i w.x.(i)
  done;
  cp_wr (n + 1) (Cell.raw w.e);
  cp_wr (n + 2) (Cell.raw w.cp);
  cp_wr (n + 3) (Cell.raw w.b);
  cp_wr (n + 4) (Cell.raw next_alt);
  cp_wr (n + 5) (Cell.raw w.tr);
  cp_wr (n + 6) (Cell.raw w.h);
  cp_wr (n + 7) (Cell.raw w.b0);
  cp_wr (n + 8) (Cell.raw w.lst);
  w.b <- base;
  w.cst <- base + n + cp_extra;
  w.hb <- w.h;
  w.prot_lst <- w.lst;
  note_high_water w

(* Discard choice points down to [target] (a saved B value or -1),
   resetting the control-stack top and local-stack protection. *)
let cut_to_level m (w : worker) target =
  if w.b <> target && (target = -1 || w.b > target) then begin
    w.b <- target;
    if target = -1 || target < w.cst_floor then begin
      w.cst <- w.cst_floor;
      w.prot_lst <- max w.lst_floor w.par_prot
    end
    else begin
      let n = Cell.payload (rd m w ~area:Trace.Area.Choice_point target) in
      w.cst <- target + n + cp_extra;
      w.prot_lst <-
        max
          (Cell.payload (rd m w ~area:Trace.Area.Choice_point (target + n + 8)))
          w.par_prot
    end
  end

(* ------------------------------------------------------------------ *)
(* Environments.                                                      *)

let allocate_env m (w : worker) n =
  let base = max w.lst w.prot_lst in
  if base + 3 + n > Layout.local_limit w.id then
    runtime_error "local stack overflow (PE %d)" w.id;
  wr m w ~area:Trace.Area.Env_control base (Cell.raw w.e);
  wr m w ~area:Trace.Area.Env_control (base + 1) (Cell.raw w.cp);
  wr m w ~area:Trace.Area.Env_control (base + 2) (Cell.raw n);
  w.e <- base;
  w.lst <- base + 3 + n;
  note_high_water w

let deallocate_env m (w : worker) =
  w.cp <- Cell.payload (rd m w ~area:Trace.Area.Env_control (w.e + 1));
  let ce = Cell.payload (rd m w ~area:Trace.Area.Env_control w.e) in
  w.lst <- w.e;
  w.e <- ce

(* ------------------------------------------------------------------ *)
(* The sequential instruction semantics.  [w.p] has already been
   advanced past the instruction; control transfers overwrite it.     *)

exception Parallel_instr of Instr.t
(* Raised for RAP-WAM instructions; the parallel simulator intercepts
   them before calling [step_core], the sequential driver treats them
   as an error. *)

let call_entry m (w : worker) fid ~tail =
  m.inferences <- m.inferences + 1;
  match Code.entry m.code fid with
  | None ->
    runtime_error "undefined predicate %s" (Symbols.spec_string m.symbols fid)
  | Some entry ->
    if not tail then w.cp <- w.p;
    w.nargs <- Symbols.functor_arity m.symbols fid;
    w.b0 <- w.b;
    w.p <- entry

let step_core m (w : worker) instr =
  match instr with
  (* ---- put ---- *)
  | Instr.Put_variable (Instr.X n, ai) ->
    let a = fresh_heap_var m w in
    w.x.(n) <- Cell.ref_ a;
    w.x.(ai) <- Cell.ref_ a
  | Instr.Put_variable (Instr.Y n, ai) ->
    let addr = w.e + 3 + n in
    wr m w ~area:Trace.Area.Env_pvar addr (Cell.ref_ addr);
    w.x.(ai) <- Cell.ref_ addr
  | Instr.Put_value (r, ai) -> w.x.(ai) <- get_reg m w r
  | Instr.Put_unsafe_value (y, ai) -> begin
    let v = deref m w (rd m w ~area:Trace.Area.Env_pvar (w.e + 3 + y)) in
    match Cell.view v with
    | Cell.Ref a when Layout.is_local_stack_addr a ->
      let ha = fresh_heap_var m w in
      bind m w a (Cell.ref_ ha);
      w.x.(ai) <- Cell.ref_ ha
    | Cell.Ref _ | Cell.Str _ | Cell.Lis _ | Cell.Con _ | Cell.Num _
    | Cell.Fun _ | Cell.Raw _ ->
      w.x.(ai) <- v
  end
  | Instr.Put_constant (c, ai) -> w.x.(ai) <- Cell.con c
  | Instr.Put_integer (n, ai) -> w.x.(ai) <- Cell.num n
  | Instr.Put_nil ai -> w.x.(ai) <- Cell.con m.nil_atom
  | Instr.Put_structure (f, ai) ->
    let a = hpush m w (Cell.fun_ f) in
    w.x.(ai) <- Cell.str a;
    w.mode_write <- true
  | Instr.Put_list ai ->
    w.x.(ai) <- Cell.lis w.h;
    w.mode_write <- true
  (* ---- get ---- *)
  | Instr.Get_variable (r, ai) -> set_reg m w r w.x.(ai)
  | Instr.Get_value (r, ai) ->
    if not (unify m w (get_reg m w r) w.x.(ai)) then fail m w
  | Instr.Get_constant (c, ai) -> begin
    match Cell.view (deref m w w.x.(ai)) with
    | Cell.Ref a -> bind m w a (Cell.con c)
    | Cell.Con c' when c' = c -> ()
    | Cell.Con _ | Cell.Str _ | Cell.Lis _ | Cell.Num _ | Cell.Fun _
    | Cell.Raw _ ->
      fail m w
  end
  | Instr.Get_integer (n, ai) -> begin
    match Cell.view (deref m w w.x.(ai)) with
    | Cell.Ref a -> bind m w a (Cell.num n)
    | Cell.Num n' when n' = n -> ()
    | Cell.Num _ | Cell.Con _ | Cell.Str _ | Cell.Lis _ | Cell.Fun _
    | Cell.Raw _ ->
      fail m w
  end
  | Instr.Get_nil ai -> begin
    match Cell.view (deref m w w.x.(ai)) with
    | Cell.Ref a -> bind m w a (Cell.con m.nil_atom)
    | Cell.Con c when c = m.nil_atom -> ()
    | Cell.Con _ | Cell.Str _ | Cell.Lis _ | Cell.Num _ | Cell.Fun _
    | Cell.Raw _ ->
      fail m w
  end
  | Instr.Get_structure (f, ai) -> begin
    match Cell.view (deref m w w.x.(ai)) with
    | Cell.Ref a ->
      let sa = hpush m w (Cell.fun_ f) in
      bind m w a (Cell.str sa);
      w.mode_write <- true
    | Cell.Str sa ->
      if rd_auto m w sa = Cell.fun_ f then begin
        w.s <- sa + 1;
        w.mode_write <- false
      end
      else fail m w
    | Cell.Con _ | Cell.Lis _ | Cell.Num _ | Cell.Fun _ | Cell.Raw _ ->
      fail m w
  end
  | Instr.Get_list ai -> begin
    match Cell.view (deref m w w.x.(ai)) with
    | Cell.Ref a ->
      bind m w a (Cell.lis w.h);
      w.mode_write <- true
    | Cell.Lis la ->
      w.s <- la;
      w.mode_write <- false
    | Cell.Con _ | Cell.Str _ | Cell.Num _ | Cell.Fun _ | Cell.Raw _ ->
      fail m w
  end
  (* ---- unify ---- *)
  | Instr.Unify_variable r ->
    if w.mode_write then begin
      let a = fresh_heap_var m w in
      set_reg m w r (Cell.ref_ a)
    end
    else begin
      set_reg m w r (rd_auto m w w.s);
      w.s <- w.s + 1
    end
  | Instr.Unify_value r ->
    if w.mode_write then ignore (hpush m w (get_reg m w r))
    else begin
      let sc = rd_auto m w w.s in
      w.s <- w.s + 1;
      if not (unify m w (get_reg m w r) sc) then fail m w
    end
  | Instr.Unify_local_value r ->
    if w.mode_write then begin
      let v = deref m w (get_reg m w r) in
      match Cell.view v with
      | Cell.Ref a when Layout.is_local_stack_addr a ->
        let ha = fresh_heap_var m w in
        bind m w a (Cell.ref_ ha);
        set_reg m w r (Cell.ref_ ha)
      | Cell.Ref _ | Cell.Str _ | Cell.Lis _ | Cell.Con _ | Cell.Num _
      | Cell.Fun _ | Cell.Raw _ ->
        ignore (hpush m w v)
    end
    else begin
      let sc = rd_auto m w w.s in
      w.s <- w.s + 1;
      if not (unify m w (get_reg m w r) sc) then fail m w
    end
  | Instr.Unify_constant c ->
    if w.mode_write then ignore (hpush m w (Cell.con c))
    else begin
      let sc = rd_auto m w w.s in
      w.s <- w.s + 1;
      match Cell.view (deref m w sc) with
      | Cell.Ref a -> bind m w a (Cell.con c)
      | Cell.Con c' when c' = c -> ()
      | Cell.Con _ | Cell.Str _ | Cell.Lis _ | Cell.Num _ | Cell.Fun _
      | Cell.Raw _ ->
        fail m w
    end
  | Instr.Unify_integer n ->
    if w.mode_write then ignore (hpush m w (Cell.num n))
    else begin
      let sc = rd_auto m w w.s in
      w.s <- w.s + 1;
      match Cell.view (deref m w sc) with
      | Cell.Ref a -> bind m w a (Cell.num n)
      | Cell.Num n' when n' = n -> ()
      | Cell.Num _ | Cell.Con _ | Cell.Str _ | Cell.Lis _ | Cell.Fun _
      | Cell.Raw _ ->
        fail m w
    end
  | Instr.Unify_nil ->
    if w.mode_write then ignore (hpush m w (Cell.con m.nil_atom))
    else begin
      let sc = rd_auto m w w.s in
      w.s <- w.s + 1;
      match Cell.view (deref m w sc) with
      | Cell.Ref a -> bind m w a (Cell.con m.nil_atom)
      | Cell.Con c when c = m.nil_atom -> ()
      | Cell.Con _ | Cell.Str _ | Cell.Lis _ | Cell.Num _ | Cell.Fun _
      | Cell.Raw _ ->
        fail m w
    end
  | Instr.Unify_void n ->
    if w.mode_write then
      for _ = 1 to n do
        ignore (fresh_heap_var m w)
      done
    else w.s <- w.s + n
  (* ---- control ---- *)
  | Instr.Allocate n -> allocate_env m w n
  | Instr.Deallocate -> deallocate_env m w
  | Instr.Call fid -> call_entry m w fid ~tail:false
  | Instr.Execute fid -> call_entry m w fid ~tail:true
  | Instr.Proceed -> w.p <- w.cp
  | Instr.Jump l -> w.p <- l
  | Instr.Halt_ok ->
    m.halted <- true;
    w.status <- Halted
  (* ---- choice ---- *)
  | Instr.Try l ->
    m.cp_created <- m.cp_created + 1;
    push_choice_point m w ~next_alt:w.p;
    w.p <- l
  | Instr.Retry l ->
    let n = Cell.payload (rd m w ~area:Trace.Area.Choice_point w.b) in
    wr m w ~area:Trace.Area.Choice_point (w.b + n + 4) (Cell.raw w.p);
    w.p <- l
  | Instr.Trust l ->
    let b = w.b in
    let n = Cell.payload (rd m w ~area:Trace.Area.Choice_point b) in
    let prev = Cell.payload (rd m w ~area:Trace.Area.Choice_point (b + n + 3)) in
    w.b <- prev;
    if prev = -1 || prev < w.cst_floor then begin
      w.prot_lst <- max w.lst_floor w.par_prot
      (* hb keeps its (conservative) value: over-trailing is safe *)
    end
    else begin
      let pn = Cell.payload (rd m w ~area:Trace.Area.Choice_point prev) in
      w.hb <-
        max
          (Cell.payload (rd m w ~area:Trace.Area.Choice_point (prev + pn + 6)))
          w.par_hb;
      w.prot_lst <-
        max
          (Cell.payload (rd m w ~area:Trace.Area.Choice_point (prev + pn + 8)))
          w.par_prot
    end;
    w.cst <- b;
    w.p <- l
  (* ---- determinacy-certified chains ---- *)
  | Instr.Det_try l ->
    let sh = w.shallow in
    if sh.sh_active then
      runtime_error "det_try: shallow frame already active (PE %d)" w.id;
    let n = w.nargs in
    sh.sh_active <- true;
    sh.sh_alt <- w.p;
    sh.sh_nargs <- n;
    for i = 1 to n do
      sh.sh_args.(i) <- w.x.(i)
    done;
    sh.sh_e <- w.e;
    sh.sh_cp <- w.cp;
    sh.sh_b0 <- w.b0;
    sh.sh_h <- w.h;
    sh.sh_lst <- w.lst;
    sh.sh_log <- [];
    sh.sh_nt_log <- [];
    m.cp_elided <- m.cp_elided + 1;
    w.p <- l
  | Instr.Det_retry l ->
    w.shallow.sh_alt <- w.p;
    w.p <- l
  | Instr.Det_trust l ->
    (* last alternative: from here a failure is a real failure *)
    w.shallow.sh_active <- false;
    w.shallow.sh_log <- [];
    w.shallow.sh_nt_log <- [];
    w.p <- l
  (* ---- indexing ---- *)
  | Instr.Switch_on_term { var_l; con_l; int_l; lis_l; str_l } -> begin
    let d = deref m w w.x.(1) in
    w.x.(1) <- d;
    let target =
      match Cell.view d with
      | Cell.Ref _ -> var_l
      | Cell.Con _ -> con_l
      | Cell.Num _ -> int_l
      | Cell.Lis _ -> lis_l
      | Cell.Str _ -> str_l
      | Cell.Fun _ | Cell.Raw _ -> runtime_error "switch: raw cell"
    in
    if target = -1 then fail m w else w.p <- target
  end
  | Instr.Switch_on_constant (tbl, default) -> begin
    match Cell.view (deref m w w.x.(1)) with
    | Cell.Con c -> begin
      match Array.find_opt (fun (k, _) -> k = c) tbl with
      | Some (_, l) -> w.p <- l
      | None -> if default = -1 then fail m w else w.p <- default
    end
    | Cell.Ref _ | Cell.Str _ | Cell.Lis _ | Cell.Num _ | Cell.Fun _
    | Cell.Raw _ ->
      fail m w
  end
  | Instr.Switch_on_integer (tbl, default) -> begin
    match Cell.view (deref m w w.x.(1)) with
    | Cell.Num n -> begin
      match Array.find_opt (fun (k, _) -> k = n) tbl with
      | Some (_, l) -> w.p <- l
      | None -> if default = -1 then fail m w else w.p <- default
    end
    | Cell.Ref _ | Cell.Str _ | Cell.Lis _ | Cell.Con _ | Cell.Fun _
    | Cell.Raw _ ->
      fail m w
  end
  | Instr.Switch_on_structure (tbl, default) -> begin
    match Cell.view (deref m w w.x.(1)) with
    | Cell.Str a -> begin
      let fid = functor_cell m w a in
      match Array.find_opt (fun (k, _) -> k = fid) tbl with
      | Some (_, l) -> w.p <- l
      | None -> if default = -1 then fail m w else w.p <- default
    end
    | Cell.Ref _ | Cell.Con _ | Cell.Lis _ | Cell.Num _ | Cell.Fun _
    | Cell.Raw _ ->
      fail m w
  end
  (* ---- cut ---- *)
  | Instr.Neck_cut -> cut_to_level m w w.b0
  | Instr.Get_level y ->
    wr m w ~area:Trace.Area.Env_pvar (w.e + 3 + y) (Cell.raw w.b0)
  | Instr.Cut_to y ->
    let target =
      Cell.payload (rd m w ~area:Trace.Area.Env_pvar (w.e + 3 + y))
    in
    cut_to_level m w target
  (* ---- escapes ---- *)
  | Instr.Builtin (b, arity) ->
    if not (exec_builtin m w b arity) then fail m w
  | Instr.Builtin_nt (b, arity) ->
    (* bindings certified unconditional: [bind] skips trailing for the
       builtin's duration (the flag is scoped to this one escape) *)
    w.no_trail <- true;
    let ok =
      try exec_builtin m w b arity
      with e ->
        w.no_trail <- false;
        raise e
    in
    w.no_trail <- false;
    if not ok then fail m w
  (* ---- binding-certified specializations (lib/bindan) ---- *)
  | Instr.Get_structure_r (f, ai) -> begin
    (* rigid at depth 0: the register holds the final cell, no deref.
       A Ref contradicts the certificate: fail rather than mis-read *)
    m.deref_skipped <- m.deref_skipped + 1;
    match Cell.view w.x.(ai) with
    | Cell.Str sa ->
      if rd_auto m w sa = Cell.fun_ f then begin
        w.s <- sa + 1;
        w.mode_write <- false
      end
      else fail m w
    | Cell.Ref _ | Cell.Con _ | Cell.Lis _ | Cell.Num _ | Cell.Fun _
    | Cell.Raw _ ->
      fail m w
  end
  | Instr.Get_list_r ai -> begin
    m.deref_skipped <- m.deref_skipped + 1;
    match Cell.view w.x.(ai) with
    | Cell.Lis la ->
      w.s <- la;
      w.mode_write <- false
    | Cell.Ref _ | Cell.Con _ | Cell.Str _ | Cell.Num _ | Cell.Fun _
    | Cell.Raw _ ->
      fail m w
  end
  | Instr.Get_value_r (r, ai) ->
    m.deref_skipped <- m.deref_skipped + 1;
    if Cell.is_ref w.x.(ai) then fail m w
    else if not (unify m w (get_reg m w r) w.x.(ai)) then fail m w
  | Instr.Get_value_u (r, ai) ->
    (* full [Get_value] control semantics; every binding the
       unification makes is certified unconditional, so [bind] skips
       trailing for the instruction's duration (same scoping as
       [Builtin_nt]) *)
    w.no_trail <- true;
    let ok =
      try unify m w (get_reg m w r) w.x.(ai)
      with e ->
        w.no_trail <- false;
        raise e
    in
    w.no_trail <- false;
    if not ok then fail m w
  | Instr.Get_structure_u (f, ai) -> begin
    (* certified free and unconditional: the register holds a Ref to
       an unbound depth-0 cell; overwrite it directly (no deref read,
       no trail test or write).  A non-Ref contradicts the freeness
       certificate *)
    m.deref_skipped <- m.deref_skipped + 1;
    match Cell.view w.x.(ai) with
    | Cell.Ref a ->
      let sa = hpush m w (Cell.fun_ f) in
      bind_nt m w a (Cell.str sa);
      w.mode_write <- true
    | Cell.Con _ | Cell.Str _ | Cell.Lis _ | Cell.Num _ | Cell.Fun _
    | Cell.Raw _ ->
      fail m w
  end
  | Instr.Get_list_u ai -> begin
    m.deref_skipped <- m.deref_skipped + 1;
    match Cell.view w.x.(ai) with
    | Cell.Ref a ->
      bind_nt m w a (Cell.lis w.h);
      w.mode_write <- true
    | Cell.Con _ | Cell.Str _ | Cell.Lis _ | Cell.Num _ | Cell.Fun _
    | Cell.Raw _ ->
      fail m w
  end
  | Instr.Get_constant_u (c, ai) -> begin
    m.deref_skipped <- m.deref_skipped + 1;
    match Cell.view w.x.(ai) with
    | Cell.Ref a -> bind_nt m w a (Cell.con c)
    | Cell.Con _ | Cell.Str _ | Cell.Lis _ | Cell.Num _ | Cell.Fun _
    | Cell.Raw _ ->
      fail m w
  end
  | Instr.Get_nil_u ai -> begin
    m.deref_skipped <- m.deref_skipped + 1;
    match Cell.view w.x.(ai) with
    | Cell.Ref a -> bind_nt m w a (Cell.con m.nil_atom)
    | Cell.Con _ | Cell.Str _ | Cell.Lis _ | Cell.Num _ | Cell.Fun _
    | Cell.Raw _ ->
      fail m w
  end
  | Instr.Get_integer_u (n, ai) -> begin
    m.deref_skipped <- m.deref_skipped + 1;
    match Cell.view w.x.(ai) with
    | Cell.Ref a -> bind_nt m w a (Cell.num n)
    | Cell.Con _ | Cell.Str _ | Cell.Lis _ | Cell.Num _ | Cell.Fun _
    | Cell.Raw _ ->
      fail m w
  end
  | Instr.Put_uninit (Instr.X n, ai) ->
    (* uninitialized output: the self-reference init of the fresh heap
       cell is dead (every consumer reaches it through a certified _u
       overwrite before any read), so the cell is allocated with an
       untraced store -- the heap write the baseline put_variable pays
       is the reference this instruction deletes *)
    if w.h >= Layout.heap_limit w.id then
      runtime_error "heap overflow (PE %d)" w.id;
    let a = w.h in
    Memory.poke m.mem a (Cell.ref_ a);
    w.h <- w.h + 1;
    if w.h > w.max_h then w.max_h <- w.h;
    w.x.(n) <- Cell.ref_ a;
    w.x.(ai) <- Cell.ref_ a
  | Instr.Put_uninit (Instr.Y n, ai) ->
    let addr = w.e + 3 + n in
    Memory.poke m.mem addr (Cell.ref_ addr);
    w.x.(ai) <- Cell.ref_ addr
  (* ---- CGE checks ---- *)
  | Instr.Check_ground (r, l) ->
    if not (is_ground m w (get_reg m w r)) then w.p <- l
  | Instr.Check_indep (r1, r2, l) ->
    if not (independent m w (get_reg m w r1) (get_reg m w r2)) then w.p <- l
  | Instr.Check_size (r, k, l) ->
    if not (size_at_least m w (get_reg m w r) k) then w.p <- l
  (* ---- parallel (handled by the RAP-WAM simulator) ---- *)
  | Instr.Alloc_parcall _ | Instr.Push_goal _ | Instr.Par_join
  | Instr.Goal_done ->
    raise (Parallel_instr instr)

(* One sequential step: fetch (traced), count, advance, execute.  The
   commit check runs at fetch time: reaching a committing instruction
   with an active shallow frame means the certified clause's test
   prefix succeeded, so the frame is retired before the instruction
   executes.  The RAP-WAM simulator's own fetch path performs the same
   check (see Rapwam.Sim.step_running). *)
let step m (w : worker) =
  let instr = fetch_traced m w in
  maybe_commit m w instr;
  m.opcode_freq.(Instr.opcode instr) <-
    m.opcode_freq.(Instr.opcode instr) + 1;
  w.instr_count <- w.instr_count + 1;
  m.steps <- m.steps + 1;
  w.p <- w.p + 1;
  step_core m w instr
