(* Prolog-to-WAM compiler.

   Implements the standard WAM compilation scheme: chunk-based
   permanent-variable analysis (head and first goal share a chunk),
   argument/temporary X-register allocation with scratch reuse for
   structure building, first-argument indexing (switch_on_term plus
   constant/structure sub-switches and try/retry/trust chains), last
   call optimization, neck and deep cut, and unsafe-value handling
   (conservative: put_unsafe_value for any permanent variable whose
   first occurrence was not a top-level head argument, and
   unify_local_value for all repeat variable occurrences inside
   structures).

   RAP-WAM extensions: a CGE item compiles to its run-time checks
   (jumping to a compiled sequential version when they fail), an
   alloc_parcall, one put+push_goal sequence per arm, and a par_join.
   Arms that are builtins get a synthetic one-instruction predicate so
   goal frames always carry a real code entry. *)

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Variable classification.                                           *)

type var_info = {
  mutable occurrences : int;
  mutable chunks : int list; (* chunk ids, most recent first *)
  mutable head_arg : bool; (* first occurrence is a top-level head arg *)
  mutable reg : Instr.reg option;
}

type clause_ctx = {
  symbols : Symbols.t;
  code : Code.t;
  vars : (string, var_info) Hashtbl.t;
  mutable next_temp : int;
  mutable free_temps : int list; (* recycled structure-building scratch *)
  mutable cut_level : int option; (* Y register holding B0 *)
}

let var_info ctx v =
  match Hashtbl.find_opt ctx.vars v with
  | Some info -> info
  | None ->
    let info = { occurrences = 0; chunks = []; head_arg = false; reg = None } in
    Hashtbl.add ctx.vars v info;
    info

let note_var ctx v ~chunk ~head_arg =
  let info = var_info ctx v in
  if info.occurrences = 0 && head_arg then info.head_arg <- true;
  info.occurrences <- info.occurrences + 1;
  match info.chunks with
  | c :: _ when c = chunk -> ()
  | _ -> info.chunks <- chunk :: info.chunks

let rec note_term ctx ~chunk ~top t =
  match t with
  | Prolog.Term.Var v -> note_var ctx v ~chunk ~head_arg:top
  | Prolog.Term.Atom _ | Prolog.Term.Int _ -> ()
  | Prolog.Term.Struct (_, args) ->
    List.iter (note_term ctx ~chunk ~top:false) args

(* ------------------------------------------------------------------ *)
(* Goal shapes.                                                       *)

let goal_parts = function
  | Prolog.Term.Atom name -> (name, [])
  | Prolog.Term.Struct (name, args) -> (name, args)
  | (Prolog.Term.Int _ | Prolog.Term.Var _) as t ->
    error "goal is not callable: %s" (Prolog.Pretty.to_string t)

type goal_kind =
  | G_cut
  | G_true
  | G_builtin of Builtin.t
  | G_user (* user-defined predicate call *)

let goal_kind db g =
  let name, args = goal_parts g in
  let arity = List.length args in
  match name with
  | "!" when arity = 0 -> G_cut
  | "true" when arity = 0 -> G_true
  | _ ->
    if Prolog.Database.has_predicate db (name, arity) then G_user
    else begin
      match Builtin.lookup name arity with
      | Some b -> G_builtin b
      | None -> G_user (* unknown predicate: fails at run time *)
    end

(* ------------------------------------------------------------------ *)
(* Binding-certified specialization (lib/bindan supplies the plan).

   The binding analysis proves per-argument instantiation facts about
   every call to a predicate: that an argument is always a
   first-occurrence free variable whose binding is unconditional
   (no choice point or parcall redo can ever untrail it), or that it
   is always bound rigid with dereference depth 0.  The compiler
   rewrites head instructions 1:1 into the [_u] / [_r] specializations
   of {!Instr}, swaps certified builtins to [builtin_nt], and turns a
   certified first-occurrence argument put into [put_uninit].  Every
   rewrite replaces exactly one instruction, so a plan-compiled code
   area stays address-aligned with the baseline — the trace-replay
   oracle in lib/bindan diffs the two arrays to find the certified
   sites and audits each against a baseline trace. *)
type arg_cert =
  | Cert_none
  | Cert_rigid  (** always bound, deref depth 0 at the head *)
  | Cert_uninit  (** always free, binding certified unconditional *)
  | Cert_value_nt
      (** repeat-variable argument whose head unification makes only
          certified-unconditional bindings: [get_value] runs with the
          trail test and write elided *)

type bind_plan = {
  bind_head : pred:string * int -> arg:int -> arg_cert;
  bind_uninit : callee:string * int -> arg:int -> bool;
  bind_builtin : pred:string * int -> Builtin.t -> bool;
}

let arg_cert bind ~pred ~arg =
  match bind with Some p -> p.bind_head ~pred ~arg | None -> Cert_none

let no_uninit _ = false

let uninit_of bind callee : int -> bool =
  match bind with
  | Some p -> fun arg -> p.bind_uninit ~callee ~arg
  | None -> no_uninit

(* ------------------------------------------------------------------ *)
(* Register allocation.                                               *)

let alloc_temp ctx =
  match ctx.free_temps with
  | t :: rest ->
    ctx.free_temps <- rest;
    t
  | [] ->
    let t = ctx.next_temp in
    ctx.next_temp <- t + 1;
    t

let free_temp ctx t = ctx.free_temps <- t :: ctx.free_temps

(* Assign Y registers to permanent variables (order of first
   occurrence) and dedicated X registers to the temporaries.  Returns
   the permanent count. *)
let assign_registers ctx order =
  let n_perm = ref (match ctx.cut_level with Some _ -> 1 | None -> 0) in
  List.iter
    (fun v ->
      let info = Hashtbl.find ctx.vars v in
      if info.reg = None then
        if List.length info.chunks > 1 then begin
          info.reg <- Some (Instr.Y !n_perm);
          incr n_perm
        end
        else info.reg <- Some (Instr.X (alloc_temp ctx)))
    order;
  !n_perm

let reg_of ctx v =
  match (Hashtbl.find ctx.vars v).reg with
  | Some r -> r
  | None -> error "variable %s has no register" v

let is_void ctx v = (Hashtbl.find ctx.vars v).occurrences = 1

(* ------------------------------------------------------------------ *)
(* Head compilation.                                                  *)

(* Structures nested inside head arguments are processed breadth-first
   through a queue of (temp register, term) pairs, as in the WAM.
   Binding certificates apply only to the top-level argument
   registers: the nested-structure drain reads cells the clause built
   itself, so it always uses the baseline instructions. *)
let compile_head ctx ?bind head =
  let emit i = ignore (Code.emit ctx.code i) in
  let seen = Hashtbl.create 16 in
  let first_occ v =
    if Hashtbl.mem seen v then false
    else begin
      Hashtbl.add seen v ();
      true
    end
  in
  let queue = Queue.create () in
  let unify_arg t =
    match t with
    | Prolog.Term.Var v ->
      if is_void ctx v then emit (Instr.Unify_void 1)
      else if first_occ v then emit (Instr.Unify_variable (reg_of ctx v))
      else emit (Instr.Unify_local_value (reg_of ctx v))
    | Prolog.Term.Int n -> emit (Instr.Unify_integer n)
    | Prolog.Term.Atom "[]" -> emit Instr.Unify_nil
    | Prolog.Term.Atom a ->
      emit (Instr.Unify_constant (Symbols.atom ctx.symbols a))
    | Prolog.Term.Struct _ ->
      let t_reg = alloc_temp ctx in
      emit (Instr.Unify_variable (Instr.X t_reg));
      Queue.add (t_reg, t) queue
  in
  let get_term ?(spec = Cert_none) ~into t =
    match (t, spec) with
    | Prolog.Term.Var v, _ ->
      (* A void head argument needs no instruction. *)
      if not (is_void ctx v) then
        if first_occ v then emit (Instr.Get_variable (reg_of ctx v, into))
        else if spec = Cert_rigid then
          emit (Instr.Get_value_r (reg_of ctx v, into))
        else if spec = Cert_value_nt then
          emit (Instr.Get_value_u (reg_of ctx v, into))
        else emit (Instr.Get_value (reg_of ctx v, into))
    | Prolog.Term.Int n, Cert_uninit -> emit (Instr.Get_integer_u (n, into))
    | Prolog.Term.Int n, _ -> emit (Instr.Get_integer (n, into))
    | Prolog.Term.Atom "[]", Cert_uninit -> emit (Instr.Get_nil_u into)
    | Prolog.Term.Atom "[]", _ -> emit (Instr.Get_nil into)
    | Prolog.Term.Atom a, Cert_uninit ->
      emit (Instr.Get_constant_u (Symbols.atom ctx.symbols a, into))
    | Prolog.Term.Atom a, _ ->
      emit (Instr.Get_constant (Symbols.atom ctx.symbols a, into))
    | Prolog.Term.Struct (".", [ h; tl ]), _ ->
      (match spec with
      | Cert_uninit -> emit (Instr.Get_list_u into)
      | Cert_rigid -> emit (Instr.Get_list_r into)
      | Cert_none | Cert_value_nt -> emit (Instr.Get_list into));
      unify_arg h;
      unify_arg tl
    | Prolog.Term.Struct (f, args), _ ->
      let fid = Symbols.functor_ ctx.symbols f (List.length args) in
      (match spec with
      | Cert_uninit -> emit (Instr.Get_structure_u (fid, into))
      | Cert_rigid -> emit (Instr.Get_structure_r (fid, into))
      | Cert_none | Cert_value_nt -> emit (Instr.Get_structure (fid, into)));
      List.iter unify_arg args
  in
  let name, head_args = goal_parts head in
  let pred = (name, List.length head_args) in
  List.iteri
    (fun i arg ->
      get_term ~spec:(arg_cert bind ~pred ~arg:(i + 1)) ~into:(i + 1) arg)
    head_args;
  (* Drain nested structures. *)
  let rec drain () =
    if not (Queue.is_empty queue) then begin
      let t_reg, t = Queue.take queue in
      get_term ~into:t_reg t;
      free_temp ctx t_reg;
      drain ()
    end
  in
  drain ()

(* ------------------------------------------------------------------ *)
(* Body argument loading (put group).                                 *)

(* Build a structure bottom-up into a register; returns the register
   holding it plus the scratch to release afterwards.  A child's
   scratch register is consumed by the parent's unify instruction, so
   it is released as soon as that instruction is emitted: live scratch
   stays proportional to the term's depth, not its size. *)
let rec build_struct ctx seen t =
  let emit i = ignore (Code.emit ctx.code i) in
  match t with
  | Prolog.Term.Struct (f, args) ->
    let prepared = List.map (prepare_unify_arg ctx seen) args in
    let dest = alloc_temp ctx in
    (match t with
    | Prolog.Term.Struct (".", [ _; _ ]) -> emit (Instr.Put_list dest)
    | _ ->
      emit
        (Instr.Put_structure
           (Symbols.functor_ ctx.symbols f (List.length args), dest)));
    List.iter
      (fun (instr, sub_scratch) ->
        emit instr;
        List.iter (free_temp ctx) sub_scratch)
      prepared;
    (dest, [ dest ])
  | Prolog.Term.Var _ | Prolog.Term.Atom _ | Prolog.Term.Int _ ->
    error "build_struct: not a structure"

(* Decide the unify_* instruction for one argument of a structure being
   built; nested structures are built first (bottom-up). *)
and prepare_unify_arg ctx seen t =
  match t with
  | Prolog.Term.Var v ->
    if is_void ctx v then (Instr.Unify_void 1, [])
    else if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      (Instr.Unify_variable (reg_of ctx v), [])
    end
    else (Instr.Unify_local_value (reg_of ctx v), [])
  | Prolog.Term.Int n -> (Instr.Unify_integer n, [])
  | Prolog.Term.Atom "[]" -> (Instr.Unify_nil, [])
  | Prolog.Term.Atom a ->
    (Instr.Unify_constant (Symbols.atom ctx.symbols a), [])
  | Prolog.Term.Struct _ ->
    let reg, scratch = build_struct ctx seen t in
    (Instr.Unify_value (Instr.X reg), scratch)

(* [put_args ctx seen ~last args] loads [args] into A1..An.  [seen]
   tracks variables already materialized in this clause (head pass plus
   previous goals).  [last] switches permanent-variable puts to
   put_unsafe_value when the variable's first occurrence was not a
   top-level head argument.  [uninit] marks argument positions the
   binding plan certifies as uninitialized output of the callee: a
   first-occurrence variable there is created with [put_uninit]
   (untraced self-reference) instead of [put_variable]. *)
let put_args ctx seen ?(uninit = no_uninit) ~last args =
  let emit i = ignore (Code.emit ctx.code i) in
  let put_one i t =
    let into = i + 1 in
    match t with
    | Prolog.Term.Var v ->
      let info = Hashtbl.find ctx.vars v in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        if uninit into then emit (Instr.Put_uninit (reg_of ctx v, into))
        else emit (Instr.Put_variable (reg_of ctx v, into))
      end
      else begin
        match reg_of ctx v with
        | Instr.Y y when last && not info.head_arg ->
          emit (Instr.Put_unsafe_value (y, into))
        | reg -> emit (Instr.Put_value (reg, into))
      end
    | Prolog.Term.Int n -> emit (Instr.Put_integer (n, into))
    | Prolog.Term.Atom "[]" -> emit (Instr.Put_nil into)
    | Prolog.Term.Atom a ->
      emit (Instr.Put_constant (Symbols.atom ctx.symbols a, into))
    | Prolog.Term.Struct _ ->
      let reg, scratch = build_struct ctx seen t in
      emit (Instr.Put_value (Instr.X reg, into));
      List.iter (free_temp ctx) scratch
  in
  List.iteri put_one args

(* ------------------------------------------------------------------ *)
(* Clause compilation.                                                *)

type pred_entry_alloc = {
  mutable synth_count : int; (* synthetic predicates for builtin arms *)
  mutable pending : (int * Builtin.t * int) list; (* fid, builtin, arity *)
}

(* A builtin appearing as a parallel arm needs a real code entry for
   its goal frame; the one-instruction predicate is emitted after the
   current clause (entries resolve at run time). *)
let synth_builtin_pred ctx alloc b arity =
  alloc.synth_count <- alloc.synth_count + 1;
  let name = Printf.sprintf "$builtin_arm_%d" alloc.synth_count in
  let fid = Symbols.functor_ ctx.symbols name arity in
  alloc.pending <- (fid, b, arity) :: alloc.pending;
  fid

let flush_synth code alloc =
  List.iter
    (fun (fid, b, arity) ->
      let addr = Code.here code in
      ignore (Code.emit code (Instr.Builtin (b, arity)));
      ignore (Code.emit code Instr.Proceed);
      Code.set_entry code fid addr)
    (List.rev alloc.pending);
  alloc.pending <- []

(* Count of body items that transfer control to user code. *)
let body_needs_env items ~has_deep_cut ~n_perm db =
  if n_perm > 0 || has_deep_cut then true
  else begin
    let rec scan = function
      | [] -> false
      | [ Prolog.Cge.Lit g ] -> begin
        (* A user call in final position runs under LCO: no env needed. *)
        match goal_kind db g with
        | G_user -> false
        | G_cut | G_true | G_builtin _ -> false
      end
      | [ Prolog.Cge.Par _ ] -> true
      | item :: rest -> begin
        match item with
        | Prolog.Cge.Par _ -> true
        | Prolog.Cge.Lit g -> begin
          match goal_kind db g with
          | G_user -> true (* non-final call: CP must survive *)
          | G_cut | G_true | G_builtin _ -> scan rest
        end
      end
    in
    scan items
  end

let check_var_reg ctx t =
  match t with
  | Prolog.Term.Var v -> reg_of ctx v
  | Prolog.Term.Atom _ | Prolog.Term.Int _ | Prolog.Term.Struct _ ->
    error "CGE check argument must be a variable: %s"
      (Prolog.Pretty.to_string t)

(* Compile one clause; returns its start address.  With
   [parallel = false] every CGE degrades to its sequential reading
   (plain calls in textual order, no checks): this is the WAM-baseline
   compilation mode. *)
let compile_clause ~parallel ?bind symbols code db alloc
    (clause : Prolog.Database.clause) =
  let ctx =
    {
      symbols;
      code;
      vars = Hashtbl.create 16;
      next_temp = 0;
      free_temps = [];
      cut_level = None;
    }
  in
  let emit i = ignore (Code.emit code i) in
  let { Prolog.Database.head; body } = clause in
  (* The predicate this clause belongs to, for plan lookups. *)
  let clause_pred =
    let name, args = goal_parts head in
    (name, List.length args)
  in
  let body =
    if parallel then body
    else
      List.concat_map
        (function
          | Prolog.Cge.Par { arms; _ } ->
            List.map (fun arm -> Prolog.Cge.Lit arm) arms
          | Prolog.Cge.Lit _ as item -> [ item ])
        body
  in
  (* --- analysis ---------------------------------------------------- *)
  let _, head_args = goal_parts head in
  let max_arity =
    List.fold_left
      (fun m item ->
        match item with
        | Prolog.Cge.Lit g -> max m (List.length (snd (goal_parts g)))
        | Prolog.Cge.Par { arms; _ } ->
          List.fold_left
            (fun m g -> max m (List.length (snd (goal_parts g))))
            m arms)
      (List.length head_args) body
  in
  ctx.next_temp <- max_arity + 1;
  (* Chunks: a chunk ends with each user call (or parcall); the call's
     own arguments belong to the chunk it terminates.  Head and inline
     builtins before the first call share chunk 0. *)
  let chunk = ref 0 in
  let started_calls = ref 0 in
  List.iter (note_term ctx ~chunk:0 ~top:true) head_args;
  let has_deep_cut = ref false in
  List.iter
    (fun item ->
      (match item with
      | Prolog.Cge.Lit g -> begin
        match goal_kind db g with
        | G_cut -> if !started_calls > 0 then has_deep_cut := true
        | G_true -> ()
        | G_builtin _ ->
          List.iter (note_term ctx ~chunk:!chunk ~top:false)
            (snd (goal_parts g))
        | G_user ->
          incr started_calls;
          List.iter (note_term ctx ~chunk:!chunk ~top:false)
            (snd (goal_parts g));
          incr chunk
      end
      | Prolog.Cge.Par { checks; arms } ->
        incr started_calls;
        List.iter
          (fun check ->
            match check with
            | Prolog.Cge.Ground x -> note_term ctx ~chunk:!chunk ~top:false x
            | Prolog.Cge.Indep (x, y) ->
              note_term ctx ~chunk:!chunk ~top:false x;
              note_term ctx ~chunk:!chunk ~top:false y
            | Prolog.Cge.Size_ge (x, _) ->
              note_term ctx ~chunk:!chunk ~top:false x)
          checks;
        (* With run-time checks the compiler also emits a sequential
           fallback in which the arms are separate calls, so each arm
           must be its own chunk; an unconditional CGE reads all arm
           arguments before any control transfer (one chunk). *)
        if checks = [] then begin
          List.iter
            (fun arm ->
              List.iter (note_term ctx ~chunk:!chunk ~top:false)
                (snd (goal_parts arm)))
            arms;
          incr chunk
        end
        else
          List.iter
            (fun arm ->
              List.iter (note_term ctx ~chunk:!chunk ~top:false)
                (snd (goal_parts arm));
              incr chunk)
            arms))
    body;
  if !has_deep_cut then ctx.cut_level <- Some 0;
  (* Register assignment in order of first occurrence. *)
  let order =
    let seen = Hashtbl.create 16 in
    let out = ref [] in
    let rec collect t =
      match t with
      | Prolog.Term.Var v ->
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.add seen v ();
          out := v :: !out
        end
      | Prolog.Term.Atom _ | Prolog.Term.Int _ -> ()
      | Prolog.Term.Struct (_, args) -> List.iter collect args
    in
    List.iter collect head_args;
    List.iter
      (fun item ->
        match item with
        | Prolog.Cge.Lit g -> List.iter collect (snd (goal_parts g))
        | Prolog.Cge.Par { checks; arms } ->
          List.iter
            (function
              | Prolog.Cge.Ground x -> collect x
              | Prolog.Cge.Indep (x, y) ->
                collect x;
                collect y
              | Prolog.Cge.Size_ge (x, _) -> collect x)
            checks;
          List.iter (fun arm -> List.iter collect (snd (goal_parts arm))) arms)
      body;
    List.rev !out
  in
  let n_perm = assign_registers ctx order in
  let needs_env =
    body_needs_env body ~has_deep_cut:!has_deep_cut ~n_perm db
  in
  (* --- emission ---------------------------------------------------- *)
  let start = Code.here code in
  if needs_env then emit (Instr.Allocate n_perm);
  (match ctx.cut_level with
  | Some y -> emit (Instr.Get_level y)
  | None -> ());
  let seen = Hashtbl.create 16 in
  (* Head variables that received registers are now materialized. *)
  let rec mark_seen t =
    match t with
    | Prolog.Term.Var v -> if not (is_void ctx v) then Hashtbl.replace seen v ()
    | Prolog.Term.Atom _ | Prolog.Term.Int _ -> ()
    | Prolog.Term.Struct (_, args) -> List.iter mark_seen args
  in
  List.iter mark_seen head_args;
  compile_head ctx ?bind head;
  (* Body items. *)
  let n_items = List.length body in
  let calls_emitted = ref 0 in
  let rec emit_items idx items =
    match items with
    | [] ->
      if needs_env then emit Instr.Deallocate;
      emit Instr.Proceed
    | item :: rest -> begin
      let is_last = idx = n_items - 1 in
      match item with
      | Prolog.Cge.Lit g -> begin
        let name, args = goal_parts g in
        let arity = List.length args in
        match goal_kind db g with
        | G_true -> emit_items (idx + 1) rest
        | G_cut ->
          (if !calls_emitted = 0 then emit Instr.Neck_cut
           else
             match ctx.cut_level with
             | Some y -> emit (Instr.Cut_to y)
             | None -> error "deep cut without saved level");
          emit_items (idx + 1) rest
        | G_builtin b ->
          put_args ctx seen ~last:is_last args;
          let nt =
            match bind with
            | Some p -> p.bind_builtin ~pred:clause_pred b
            | None -> false
          in
          emit
            (if nt then Instr.Builtin_nt (b, arity)
             else Instr.Builtin (b, arity));
          emit_items (idx + 1) rest
        | G_user ->
          let fid = Symbols.functor_ ctx.symbols name arity in
          put_args ctx seen ~uninit:(uninit_of bind (name, arity))
            ~last:is_last args;
          if is_last then begin
            if needs_env then emit Instr.Deallocate;
            emit (Instr.Execute fid)
          end
          else begin
            emit (Instr.Call fid);
            incr calls_emitted;
            emit_items (idx + 1) rest
          end
      end
      | Prolog.Cge.Par { checks; arms } ->
        let k = List.length arms in
        (* Run-time checks jump to the sequential version on failure.
           A check variable whose first occurrence is the check itself
           must be materialized first (an unbound variable is trivially
           non-ground / independent, but the register must hold a real
           cell, not stack garbage). *)
        let materialize t =
          match t with
          | Prolog.Term.Var v when not (Hashtbl.mem seen v) ->
            Hashtbl.replace seen v ();
            let a = alloc_temp ctx in
            emit (Instr.Put_variable (reg_of ctx v, a));
            free_temp ctx a
          | Prolog.Term.Var _ | Prolog.Term.Atom _ | Prolog.Term.Int _
          | Prolog.Term.Struct _ ->
            ()
        in
        List.iter
          (fun check ->
            match check with
            | Prolog.Cge.Ground x -> materialize x
            | Prolog.Cge.Indep (x, y) ->
              materialize x;
              materialize y
            | Prolog.Cge.Size_ge (x, _) -> materialize x)
          checks;
        let check_patch_addrs =
          List.map
            (fun check ->
              match check with
              | Prolog.Cge.Ground x ->
                Code.emit code (Instr.Check_ground (check_var_reg ctx x, -1))
              | Prolog.Cge.Indep (x, y) ->
                Code.emit code
                  (Instr.Check_indep
                     (check_var_reg ctx x, check_var_reg ctx y, -1))
              | Prolog.Cge.Size_ge (x, k) ->
                Code.emit code
                  (Instr.Check_size (check_var_reg ctx x, k, -1)))
            checks
        in
        (* Both branches (parallel and sequential fallback) must
           materialize the variables first occurring inside this item,
           so the fallback compiles against a snapshot of [seen]. *)
        let seen_before = Hashtbl.copy seen in
        (* The parent pushes arms 2..k for other PEs (and itself) and
           executes the first arm inline -- the RAP-WAM scheme, which
           keeps 1-PE behaviour close to the sequential WAM. *)
        let alloc_addr = Code.emit code (Instr.Alloc_parcall (k - 1, -1)) in
        let inline_arm, pushed_arms =
          match arms with
          | inline :: rest -> (inline, rest)
          | [] -> error "empty parallel conjunction"
        in
        List.iteri
          (fun slot arm ->
            let name, args = goal_parts arm in
            let arity = List.length args in
            let fid, uninit =
              match goal_kind db arm with
              | G_user ->
                ( Symbols.functor_ ctx.symbols name arity,
                  uninit_of bind (name, arity) )
              | G_builtin b ->
                (synth_builtin_pred ctx alloc b arity, no_uninit)
              | G_cut | G_true ->
                error "cut/true cannot be a parallel goal"
            in
            put_args ctx seen ~uninit ~last:false args;
            emit (Instr.Push_goal (slot, fid, arity)))
          pushed_arms;
        (let name, args = goal_parts inline_arm in
         let arity = List.length args in
         match goal_kind db inline_arm with
         | G_builtin b ->
           put_args ctx seen ~last:false args;
           emit (Instr.Builtin (b, arity))
         | G_user ->
           let fid = Symbols.functor_ ctx.symbols name arity in
           put_args ctx seen ~uninit:(uninit_of bind (name, arity))
             ~last:false args;
           emit (Instr.Call fid)
         | G_cut | G_true -> error "cut/true cannot be a parallel goal");
        let join = Code.emit code Instr.Par_join in
        Code.patch code alloc_addr (Instr.Alloc_parcall (k - 1, join));
        incr calls_emitted;
        if checks = [] then emit_items (idx + 1) rest
        else begin
          (* jump over the sequential fallback *)
          let jump_addr = Code.emit code (Instr.Jump (-1)) in
          let seq_start = Code.here code in
          List.iter2
            (fun check patch_addr ->
              match (check, Code.fetch code patch_addr) with
              | Prolog.Cge.Ground _, Instr.Check_ground (r, _) ->
                Code.patch code patch_addr (Instr.Check_ground (r, seq_start))
              | Prolog.Cge.Indep _, Instr.Check_indep (r1, r2, _) ->
                Code.patch code patch_addr
                  (Instr.Check_indep (r1, r2, seq_start))
              | Prolog.Cge.Size_ge _, Instr.Check_size (r, k, _) ->
                Code.patch code patch_addr (Instr.Check_size (r, k, seq_start))
              | _, _ -> error "check backpatch mismatch")
            checks check_patch_addrs;
          (* Sequential fallback: plain calls in textual order,
             compiled against the pre-parcall [seen] snapshot. *)
          List.iter
            (fun arm ->
              let name, args = goal_parts arm in
              let arity = List.length args in
              match goal_kind db arm with
              | G_builtin b ->
                put_args ctx seen_before ~last:false args;
                emit (Instr.Builtin (b, arity))
              | G_user ->
                let fid = Symbols.functor_ ctx.symbols name arity in
                put_args ctx seen_before
                  ~uninit:(uninit_of bind (name, arity)) ~last:false args;
                emit (Instr.Call fid)
              | G_cut | G_true -> error "cut/true cannot be a parallel goal")
            arms;
          let after = Code.emit code (Instr.Jump (-1)) in
          ignore after;
          let cont = Code.here code in
          Code.patch code jump_addr (Instr.Jump cont);
          Code.patch code after (Instr.Jump cont);
          emit_items (idx + 1) rest
        end
    end
  in
  emit_items 0 body;
  start

(* ------------------------------------------------------------------ *)
(* Predicate compilation with first-argument indexing.                *)

(* Determinacy-driven chain elision (lib/detan supplies the plan).

   A chain the plan certifies is emitted with det_try/det_retry/
   det_trust: the machine keeps a register-resident shallow frame
   instead of pushing a choice point, and discards the remaining
   alternatives at the clause's first committing instruction (call,
   proceed, neck_cut, parcall...).  That is sound only when the
   certificate holds -- every non-last alternative either leads with a
   cut or is mutually exclusive with all later alternatives -- which
   is exactly what [det_certify] is asked to prove; the compiler
   trusts it blindly, so the dynamic oracle in lib/detan exists to
   audit the claim against real traces.  [det_dead_var] additionally
   prunes the variable-dispatch chain of switch_on_term when the
   analysis proves the first argument is always instantiated at call
   time.  [det_orphan_sabotage] deliberately mis-emits certified
   chains headed by det_retry (no det_try): the seeded defect the
   wamlint orphan-chain rule must catch. *)
type det_plan = {
  det_certify :
    db:Prolog.Database.t ->
    pred:string * int ->
    bucket:string ->
    Prolog.Database.clause list ->
    bool;
  det_dead_var : string * int -> bool;
  det_orphan_sabotage : bool;
}

(* One emitted try/retry/trust (or det) chain, for the elision stats
   and the trace-replay oracle: [ci_clauses] are indices into the
   predicate's clause list, in chain order, so a later analysis can
   re-derive the certificate for the exact alternatives emitted. *)
type chain_info = {
  ci_pred : string * int;
  ci_bucket : string;  (** "seq" | "var" | "lis" | "con" | "int" | "str" | "default" *)
  ci_start : int;  (** address of the try (or det_try) *)
  ci_alts : int;
  ci_det : bool;
  ci_clauses : int list;
}

type first_arg = FA_var | FA_con of int | FA_int of int | FA_lis | FA_str of int

let first_arg_of symbols (clause : Prolog.Database.clause) =
  match clause.head with
  | Prolog.Term.Atom _ -> FA_var
  | Prolog.Term.Struct (_, arg :: _) -> begin
    match arg with
    | Prolog.Term.Var _ -> FA_var
    | Prolog.Term.Atom a -> FA_con (Symbols.atom symbols a)
    | Prolog.Term.Int n -> FA_int n
    | Prolog.Term.Struct (".", [ _; _ ]) -> FA_lis
    | Prolog.Term.Struct (f, args) ->
      FA_str (Symbols.functor_ symbols f (List.length args))
  end
  | Prolog.Term.Struct (_, []) | Prolog.Term.Int _ | Prolog.Term.Var _ ->
    FA_var

(* Chain instruction for position [i] of [n] alternatives.  The det
   variants keep the frame in registers; [sabotage] mis-heads the
   chain with det_retry (seeded defect for the orphan-chain lint). *)
let chain_instr ~det ~sabotage i n target =
  if det then
    if i = 0 then
      if sabotage then Instr.Det_retry target else Instr.Det_try target
    else if i = n - 1 then Instr.Det_trust target
    else Instr.Det_retry target
  else if i = 0 then Instr.Try target
  else if i = n - 1 then Instr.Trust target
  else Instr.Retry target

(* Emit a try/retry/trust chain over clause addresses.  A single
   address needs no chain. *)
let emit_chain ?(det = false) ?(sabotage = false) code addrs =
  match addrs with
  | [] -> -1
  | [ a ] -> a
  | addrs ->
    let start = Code.here code in
    let n = List.length addrs in
    List.iteri
      (fun i a -> ignore (Code.emit code (chain_instr ~det ~sabotage i n a)))
      addrs;
    start

let compile_predicate ~parallel ?det ?bind ?chains symbols code db alloc key =
  let clauses = Prolog.Database.clauses db key in
  let name, arity = key in
  let fid = Symbols.functor_ symbols name arity in
  (* Should this chain of alternatives run choice-point-free?  The
     plan sees the exact clauses in chain order; shallow frames hold
     at most 255 saved argument registers. *)
  let certify ~bucket cls =
    match det with
    | Some plan when List.length cls > 1 && arity < 256 ->
      plan.det_certify ~db ~pred:key ~bucket (List.map snd cls)
    | Some _ | None -> false
  in
  let sabotage =
    match det with Some p -> p.det_orphan_sabotage | None -> false
  in
  let log_chain ~bucket ~start ~is_det cls =
    match chains with
    | Some r when List.length cls > 1 ->
      r :=
        {
          ci_pred = key;
          ci_bucket = bucket;
          ci_start = start;
          ci_alts = List.length cls;
          ci_det = is_det;
          ci_clauses = List.map fst cls;
        }
        :: !r
    | Some _ | None -> ()
  in
  match clauses with
  | [] -> ()
  | [ clause ] ->
    let addr = compile_clause ~parallel ?bind symbols code db alloc clause in
    Code.set_entry code fid addr
  | clauses ->
    let fas = List.map (first_arg_of symbols) clauses in
    let indexable =
      arity > 0 && List.exists (fun fa -> fa <> FA_var) fas
    in
    if not indexable then begin
      (* Reserve the chain, compile clauses, patch the chain. *)
      let n = List.length clauses in
      let icls = List.mapi (fun i c -> (i, c)) clauses in
      let is_det = certify ~bucket:"seq" icls in
      let entry = Code.here code in
      List.iteri
        (fun i _ ->
          ignore (Code.emit code (chain_instr ~det:is_det ~sabotage i n (-1))))
        clauses;
      let addrs =
        List.map (fun c -> compile_clause ~parallel ?bind symbols code db alloc c) clauses
      in
      List.iteri
        (fun i addr ->
          Code.patch code (entry + i) (chain_instr ~det:is_det ~sabotage i n addr))
        addrs;
      log_chain ~bucket:"seq" ~start:entry ~is_det icls;
      Code.set_entry code fid entry
    end
    else begin
      (* Standard two-level first-argument indexing.  A bucket for a
         key holds, in source order, the clauses whose first head
         argument matches that key plus every variable-headed clause
         (which matches anything); the sub-switch default handles keys
         absent from the table (variable-headed clauses only). *)
      let entry =
        Code.emit code
          (Instr.Switch_on_term
             { var_l = -1; con_l = -1; int_l = -1; lis_l = -1; str_l = -1 })
      in
      let addrs =
        List.map (fun c -> compile_clause ~parallel ?bind symbols code db alloc c) clauses
      in
      let clause_arr = Array.of_list clauses in
      let tagged =
        List.mapi (fun i (fa, a) -> (fa, a, i)) (List.combine fas addrs)
      in
      let bucket pred =
        List.filter_map
          (fun (fa, a, i) -> if fa = FA_var || pred fa then Some (a, i) else None)
          tagged
      in
      (* Emit one (possibly det) chain over bucket members, logging
         the clause indices so the oracle can re-derive the
         certificate against this exact alternative order. *)
      let chain ~bucket:bk members =
        match members with
        | [] -> -1
        | [ (a, _) ] -> a
        | members ->
          let icls = List.map (fun (_, i) -> (i, clause_arr.(i))) members in
          let is_det = certify ~bucket:bk icls in
          let start =
            emit_chain ~det:is_det ~sabotage code (List.map fst members)
          in
          log_chain ~bucket:bk ~start ~is_det icls;
          start
      in
      (* A variable first argument at call time runs all clauses in
         order; when the analysis proves the argument is always bound
         (dead_var) the dispatch target is never taken and we point it
         at fail instead of emitting the chain. *)
      let dead_var =
        match det with Some p -> p.det_dead_var key | None -> false
      in
      let var_l =
        if dead_var then -1
        else chain ~bucket:"var" (List.map (fun (_, a, i) -> (a, i)) tagged)
      in
      let lis_l = chain ~bucket:"lis" (bucket (fun fa -> fa = FA_lis)) in
      (* Distinct keys of one shape, in first-appearance order. *)
      let keys_of extract =
        List.fold_left
          (fun keys (fa, _, _) ->
            match extract fa with
            | Some k when not (List.mem k keys) -> keys @ [ k ]
            | Some _ | None -> keys)
          [] tagged
      in
      (* the default (unknown key) runs the variable-headed clauses *)
      let var_only =
        List.filter_map
          (fun (fa, a, i) -> if fa = FA_var then Some (a, i) else None)
          tagged
      in
      let var_only_l = chain ~bucket:"default" var_only in
      let sub extract instr_of has_any ~bucket:bk =
        if not has_any then
          (* no clause with this shape: unknown keys fall back to the
             variable-headed clauses (possibly fail) *)
          var_only_l
        else begin
          let keys = keys_of extract in
          let groups =
            List.map
              (fun k -> (k, chain ~bucket:bk (bucket (fun fa -> extract fa = Some k))))
              keys
          in
          match groups with
          | [] -> var_only_l
          | [ (_, a) ] when var_only_l = -1 ->
            (* single key, no variable clauses: heads re-verify *)
            a
          | _ :: _ ->
            Code.emit code (instr_of (Array.of_list groups, var_only_l))
        end
      in
      let has shape = List.exists (fun fa -> shape fa) fas in
      let con_l =
        sub
          (function FA_con c -> Some c | FA_var | FA_int _ | FA_lis | FA_str _ -> None)
          (fun (g, d) -> Instr.Switch_on_constant (g, d))
          (has (function FA_con _ -> true | _ -> false))
          ~bucket:"con"
      in
      let int_l =
        sub
          (function FA_int n -> Some n | FA_var | FA_con _ | FA_lis | FA_str _ -> None)
          (fun (g, d) -> Instr.Switch_on_integer (g, d))
          (has (function FA_int _ -> true | _ -> false))
          ~bucket:"int"
      in
      let str_l =
        sub
          (function FA_str f -> Some f | FA_var | FA_con _ | FA_int _ | FA_lis -> None)
          (fun (g, d) -> Instr.Switch_on_structure (g, d))
          (has (function FA_str _ -> true | _ -> false))
          ~bucket:"str"
      in
      let lis_l = if lis_l = -1 then var_only_l else lis_l in
      Code.patch code entry
        (Instr.Switch_on_term { var_l; con_l; int_l; lis_l; str_l });
      Code.set_entry code fid entry
    end

(* ------------------------------------------------------------------ *)

(* Fixed low addresses for the two return points. *)
let halt_addr = 0
let goal_done_addr = 1

let compile_db ?(parallel = true) ?det ?bind ?chains symbols db =
  let code = Code.create () in
  assert (Code.emit code Instr.Halt_ok = halt_addr);
  assert (Code.emit code Instr.Goal_done = goal_done_addr);
  let alloc = { synth_count = 0; pending = [] } in
  List.iter
    (fun key -> compile_predicate ~parallel ?det ?bind ?chains symbols code db alloc key)
    (Prolog.Database.predicates db);
  flush_synth code alloc;
  code
