(** Static verifier over compiled WAM/RAP-WAM code.

    [check] runs a forward dataflow analysis from every predicate
    entry (plus the fixed halt/goal-done return points), tracking
    which argument/temporary X registers and environment Y slots hold
    defined values, whether an environment is allocated and how big it
    is, whether a structure (unify) context is open, and the state of
    an open parcall region.  Rules checked:

    - X/A and Y registers are defined before use; calls clobber the X
      bank; backtracking restores exactly A1..An.
    - Y-slot accesses require a live environment and stay inside the
      [allocate] size; [deallocate] is immediately followed by
      [execute] or [proceed] (no dangling-frame access).
    - [put_unsafe_value] only reads a defined in-bounds Y slot of a
      live environment.
    - [try]/[retry]/[trust] chains (and their shallow
      [det_try]/[det_retry]/[det_trust] counterparts) are well-formed
      (contiguous, trust last, no mixing of the two kinds) and their
      targets, switch targets and jump targets are in bounds ([-1] =
      fail is legal in switch tables only).
    - orphan-chain: a [retry]/[trust] (or [det_retry]/[det_trust])
      reachable on some control-flow path whose predecessor was not
      the matching try/retry — it would update or pop a frame nobody
      pushed, the shape a buggy choice-point elision leaves behind.
    - [alloc_parcall] points at a [par_join]; each of its goal slots
      is pushed exactly once before the join; pushed goals name
      predicates with real code entries and consistent arities.
    - trail discipline: [cut_to Y_n] only names a slot that holds a
      choice-point level saved by [get_level Y_n] on every path (and
      not clobbered since), so the cut unwinds the trail to a real
      mark.
    - unify instructions appear only in a structure context; every
      instruction is reachable from some entry.
    - parcall region discipline, from the per-instruction access
      metadata ({!Access}): no cut inside an open parcall region
      ([parcall-cut] -- siblings must die through the kill protocol),
      no CGE check inside one ([parcall-check] -- the else-branch
      cannot unwind the frame), and no write to a cross-PE
      coordination area (parcall slots/counters, goal frames) outside
      one ([shared-write-unframed]).
    - environment-size drift ([env-drift]): an environment that is
      still allocated at [proceed]/[execute] where the path since its
      [allocate] ran only builtins and data instructions -- an
      allocate/deallocate imbalance no call could excuse, so each
      activation leaks a frame and the stack drifts upward.
    - trail-elision discipline ([nt-builtin]): [builtin_nt] may only
      name =/2 or is/2 -- the only builtins whose bindings the binding
      analysis certifies; in particular the \=/2 trial-undo protocol
      must never run with trailing elided. *)

type diag = {
  addr : int;  (** code address of the offending instruction *)
  pred : string;  (** ["name/arity"] of the entry that reached it *)
  rule : string;  (** short rule identifier, e.g. ["use-before-def"] *)
  message : string;
}

val check : Symbols.t -> Code.t -> diag list
(** Diagnostics in code-address order; [[]] means the code verifies. *)

val check_program : Program.t -> diag list

val pp_diag : Format.formatter -> diag -> unit
