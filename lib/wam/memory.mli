(** The simulated shared memory: word-addressed, chunk-allocated on
    demand.  Every {!read}/{!write} emits a tagged reference record to
    the attached trace sink; {!peek}/{!poke} bypass tracing (answer
    decoding, debugging, spin-wait polls). *)

type t = {
  mutable chunks : int array option array;
  mutable sink : Trace.Sink.t;
}

val create : ?sink:Trace.Sink.t -> unit -> t
val set_sink : t -> Trace.Sink.t -> unit

val read : t -> pe:int -> area:Trace.Area.t -> int -> int
val write : t -> pe:int -> area:Trace.Area.t -> int -> int -> unit

val sync : t -> pe:int -> kind:Trace.Ref_record.sync_kind -> int -> unit
(** Record an explicit synchronization event in the trace; no memory
    access is performed.  The address names the word the
    happens-before edge hangs off (a lock word, a published frame). *)

val read_auto : t -> pe:int -> int -> int
(** Like {!read} with the area derived from the address. *)

val write_auto : t -> pe:int -> int -> int -> unit

val peek : t -> int -> int
(** Untraced read. *)

val poke : t -> int -> int -> unit
(** Untraced write. *)
