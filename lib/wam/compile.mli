(** Prolog-to-WAM compiler.

    Standard WAM compilation: chunk-based permanent-variable analysis
    (head and first goal share a chunk; a conditional CGE's arms are
    separate chunks because the fallback calls them sequentially),
    argument/temporary register allocation with scratch reuse,
    first-argument indexing (switch_on_term, constant/structure
    sub-switches with variable-clause buckets, try/retry/trust
    chains), last call optimization, neck and deep cut, conservative
    unsafe-value handling.

    RAP-WAM extensions: a CGE compiles to its run-time checks (jumping
    to a compiled sequential fallback when they fail), an
    alloc_parcall, push_goal for goals 2..k, an inline call of the
    first goal, and a par_join whose address is patched into the
    alloc. *)

exception Error of string

val halt_addr : int
(** Address of the query-success return point (instruction 0). *)

val goal_done_addr : int
(** Return point of parallel goals (instruction 1). *)

type det_plan = {
  det_certify :
    db:Prolog.Database.t ->
    pred:string * int ->
    bucket:string ->
    Prolog.Database.clause list ->
    bool;
      (** Asked once per multi-clause chain, with the alternatives in
          chain order.  Answering [true] makes the compiler emit the
          chain as det_try/det_retry/det_trust — choice-point free —
          so the answer must prove that every non-last alternative
          either leads with a cut or is mutually exclusive with all
          later ones (see {!Detan.Exclusion}). *)
  det_dead_var : string * int -> bool;
      (** [true] when the first argument is provably bound at every
          call: the switch_on_term variable-dispatch chain is dead and
          compiles to fail instead of being emitted. *)
  det_orphan_sabotage : bool;
      (** Seeded defect: head certified chains with det_retry instead
          of det_try (caught by the wamlint orphan-chain rule). *)
}
(** Determinacy plan supplied by lib/detan; [det_certify] is trusted
    blindly, the dynamic oracle audits it against traces. *)

type chain_info = {
  ci_pred : string * int;
  ci_bucket : string;
      (** ["seq"] (non-indexed), ["var"], ["lis"], ["con"], ["int"],
          ["str"] or ["default"] (unknown-key fallback). *)
  ci_start : int;  (** address of the try / det_try *)
  ci_alts : int;
  ci_det : bool;
  ci_clauses : int list;
      (** indices into [Database.clauses db ci_pred], in chain order *)
}
(** One emitted multi-alternative chain, logged for elision statistics
    and for the trace-replay soundness oracle. *)

val compile_db :
  ?parallel:bool ->
  ?det:det_plan ->
  ?chains:chain_info list ref ->
  Symbols.t ->
  Prolog.Database.t ->
  Code.t
(** Compile every predicate.  [parallel = false] flattens CGEs into
    plain conjunctions (the sequential WAM baseline).  [det] enables
    determinacy-driven choice-point elision; [chains] accumulates a
    log of every emitted try chain (in reverse emission order). *)
