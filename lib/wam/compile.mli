(** Prolog-to-WAM compiler.

    Standard WAM compilation: chunk-based permanent-variable analysis
    (head and first goal share a chunk; a conditional CGE's arms are
    separate chunks because the fallback calls them sequentially),
    argument/temporary register allocation with scratch reuse,
    first-argument indexing (switch_on_term, constant/structure
    sub-switches with variable-clause buckets, try/retry/trust
    chains), last call optimization, neck and deep cut, conservative
    unsafe-value handling.

    RAP-WAM extensions: a CGE compiles to its run-time checks (jumping
    to a compiled sequential fallback when they fail), an
    alloc_parcall, push_goal for goals 2..k, an inline call of the
    first goal, and a par_join whose address is patched into the
    alloc. *)

exception Error of string

val halt_addr : int
(** Address of the query-success return point (instruction 0). *)

val goal_done_addr : int
(** Return point of parallel goals (instruction 1). *)

type det_plan = {
  det_certify :
    db:Prolog.Database.t ->
    pred:string * int ->
    bucket:string ->
    Prolog.Database.clause list ->
    bool;
      (** Asked once per multi-clause chain, with the alternatives in
          chain order.  Answering [true] makes the compiler emit the
          chain as det_try/det_retry/det_trust — choice-point free —
          so the answer must prove that every non-last alternative
          either leads with a cut or is mutually exclusive with all
          later ones (see {!Detan.Exclusion}). *)
  det_dead_var : string * int -> bool;
      (** [true] when the first argument is provably bound at every
          call: the switch_on_term variable-dispatch chain is dead and
          compiles to fail instead of being emitted. *)
  det_orphan_sabotage : bool;
      (** Seeded defect: head certified chains with det_retry instead
          of det_try (caught by the wamlint orphan-chain rule). *)
}
(** Determinacy plan supplied by lib/detan; [det_certify] is trusted
    blindly, the dynamic oracle audits it against traces. *)

type arg_cert =
  | Cert_none
  | Cert_rigid
      (** always bound with dereference depth 0 at the head: the [_r]
          get specializations skip the deref loop *)
  | Cert_uninit
      (** always a free first-occurrence variable whose binding is
          unconditional: the [_u] get specializations bind directly
          with the trail check elided *)
  | Cert_value_nt
      (** repeat-variable argument position in a program certified
          free of live choice points: the head [get_value] keeps its
          full unification semantics but elides every trail test and
          write ([get_value_u]) *)

type bind_plan = {
  bind_head : pred:string * int -> arg:int -> arg_cert;
      (** Instantiation certificate for one head argument position;
          applied to every clause of the predicate, so the certificate
          must hold across all of them (and [Cert_uninit] additionally
          requires every multi-clause chain reaching the head to be
          determinacy-certified — a shallow retry restores elided
          bindings, a deep backtrack cannot). *)
  bind_uninit : callee:string * int -> arg:int -> bool;
      (** [true] when the callee's argument is certified uninitialized
          output: a first-occurrence variable put compiles to
          [put_uninit] (untraced self-reference) instead of
          [put_variable]. *)
  bind_builtin : pred:string * int -> Builtin.t -> bool;
      (** [true] when every occurrence of the builtin in the
          predicate's clause bodies only makes certified-unconditional
          bindings: those sites compile to [builtin_nt].  Only =/2 and
          is/2 are eligible (enforced by the wamlint [nt-builtin]
          rule). *)
}
(** Binding/instantiation plan supplied by lib/bindan.  Every rewrite
    it triggers replaces exactly one baseline instruction, keeping the
    code address-aligned with a plan-free compilation of the same
    database — the lib/bindan trace-replay oracle relies on that to
    locate and audit the certified sites. *)

type chain_info = {
  ci_pred : string * int;
  ci_bucket : string;
      (** ["seq"] (non-indexed), ["var"], ["lis"], ["con"], ["int"],
          ["str"] or ["default"] (unknown-key fallback). *)
  ci_start : int;  (** address of the try / det_try *)
  ci_alts : int;
  ci_det : bool;
  ci_clauses : int list;
      (** indices into [Database.clauses db ci_pred], in chain order *)
}
(** One emitted multi-alternative chain, logged for elision statistics
    and for the trace-replay soundness oracle. *)

val compile_db :
  ?parallel:bool ->
  ?det:det_plan ->
  ?bind:bind_plan ->
  ?chains:chain_info list ref ->
  Symbols.t ->
  Prolog.Database.t ->
  Code.t
(** Compile every predicate.  [parallel = false] flattens CGEs into
    plain conjunctions (the sequential WAM baseline).  [det] enables
    determinacy-driven choice-point elision; [bind] enables
    binding-certified instruction specialization; [chains] accumulates
    a log of every emitted try chain (in reverse emission order). *)
