(** Static memory-access metadata of the instruction set.

    For every instruction, the storage areas it may touch and in which
    direction — the static counterpart of the tagged references
    [Exec]/[Core] emit at run time.  The refmap analysis folds these
    per-instruction footprints into per-predicate area/mode summaries;
    the metadata therefore over-approximates: an access is listed if
    any execution of the instruction can perform it.

    Unification instructions are refined by groundness: a get/unify on
    a ground argument runs in read mode and never binds, so callers may
    pass a [ctx] describing which registers are known ground (seeded
    from [Prolog.Abspat] call patterns).  The default context assumes
    nothing and yields the fully conservative footprint. *)

type op = R | W

type acc = { area : Trace.Area.t; op : op }

type ctx = {
  ground : Instr.reg -> bool;
      (** is the term held by this register known ground? *)
  struct_ground : bool;
      (** the unify sequence in progress reads a ground structure
          (set after a get_structure/get_list on a ground register) *)
}

val conservative : ctx
(** Nothing known: every refinable instruction gets its full footprint. *)

val of_instr : ?ctx:ctx -> Instr.t -> acc list
(** Areas the instruction may touch during normal (non-failing)
    execution.  Instruction fetches (Code reads) are implicit and not
    listed. *)

val may_fail : Instr.t -> bool
(** Can executing this instruction enter the failure path
    (choice-point restore + untrail)?  Calls are excluded: a callee's
    failure is attributed to the callee's own instructions. *)

val failure : parallel:bool -> acc list
(** Footprint of the failure path itself: choice-point reads, trail
    replay, and the write-through resets of trailed heap and stack
    bindings.  With [~parallel:true] (code containing parcalls) the
    footprint also covers backward execution through parallel goals:
    marker restores and parcall-frame check-ins performed while the
    failing predicate is still the PE's attribution target. *)
