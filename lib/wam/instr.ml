(* The RAP-WAM instruction set: the standard WAM repertoire (put/get/
   unify groups, control, choice, indexing, cut) plus the parallel
   extensions (CGE checks, parcall allocation, goal pushing, join).

   Labels are absolute code addresses (patched by the compiler); [-1]
   as a switch target means "fail". *)

type reg = X of int | Y of int

type t =
  (* put group: load argument registers before a call *)
  | Put_variable of reg * int
  | Put_value of reg * int
  | Put_unsafe_value of int * int (* Y index, A *)
  | Put_constant of int * int (* atom id, A *)
  | Put_integer of int * int
  | Put_nil of int
  | Put_structure of int * int (* functor id, A *)
  | Put_list of int
  (* get group: head argument unification *)
  | Get_variable of reg * int
  | Get_value of reg * int
  | Get_constant of int * int
  | Get_integer of int * int
  | Get_nil of int
  | Get_structure of int * int
  | Get_list of int
  (* unify group: structure arguments, in read or write mode *)
  | Unify_variable of reg
  | Unify_value of reg
  | Unify_local_value of reg
  | Unify_constant of int
  | Unify_integer of int
  | Unify_nil
  | Unify_void of int
  (* control *)
  | Allocate of int (* n permanent variables *)
  | Deallocate
  | Call of int (* predicate functor id *)
  | Execute of int
  | Proceed
  | Jump of int
  | Halt_ok (* query succeeded *)
  (* choice *)
  | Try of int
  | Retry of int
  | Trust of int
  (* determinacy-certified chains (lib/detan): same alternative layout
     as try/retry/trust, but the frame is a worker-private shallow
     snapshot (registers + an undo log) — no choice-point-area words
     are written and nothing is trailed until the clause commits *)
  | Det_try of int
  | Det_retry of int
  | Det_trust of int
  (* binding-certified specializations (lib/bindan): the analysis
     proves an argument's instantiation and binding conditionality at
     compile time, so the generic deref / trail-test / heap-cell work
     can be dropped.  [_r] variants read a rigid depth-0 argument (the
     register already holds a non-reference cell: no deref loop, a Ref
     is a certified-fact violation and fails).  [_u] variants bind a
     certified-unconditional free argument (a self-reference the caller
     created after every enclosing choice point and parcall trail
     floor): the cell is overwritten directly, no deref read and no
     trail test or write *)
  | Get_structure_r of int * int
  | Get_list_r of int
  | Get_value_r of reg * int
  | Get_structure_u of int * int
  | Get_list_u of int
  | Get_constant_u of int * int
  | Get_integer_u of int * int
  | Get_nil_u of int
  | Builtin_nt of Builtin.t * int
  | Put_uninit of reg * int
  | Get_value_u of reg * int
  (* indexing *)
  | Switch_on_term of {
      var_l : int;
      con_l : int;
      int_l : int;
      lis_l : int;
      str_l : int;
    }
  | Switch_on_constant of (int * int) array * int (* table, default *)
  | Switch_on_integer of (int * int) array * int
  | Switch_on_structure of (int * int) array * int (* functor id keys *)
  (* cut *)
  | Neck_cut
  | Get_level of int (* Yn := B0 *)
  | Cut_to of int (* cut to choice point saved in Yn *)
  (* escapes *)
  | Builtin of Builtin.t * int (* builtin, arity *)
  (* RAP-WAM parallel extensions *)
  | Check_ground of reg * int (* else-label: run sequential version *)
  | Check_indep of reg * reg * int
  | Check_size of reg * int * int (* minimum term size, else-label *)
  | Alloc_parcall of int * int (* pushed-goal count, join address *)
  | Push_goal of int * int * int (* slot, predicate functor id, arity *)
  | Par_join
  | Goal_done (* return point of a parallel goal *)

let opcode = function
  | Put_variable _ -> 0
  | Put_value _ -> 1
  | Put_unsafe_value _ -> 2
  | Put_constant _ -> 3
  | Put_integer _ -> 4
  | Put_nil _ -> 5
  | Put_structure _ -> 6
  | Put_list _ -> 7
  | Get_variable _ -> 8
  | Get_value _ -> 9
  | Get_constant _ -> 10
  | Get_integer _ -> 11
  | Get_nil _ -> 12
  | Get_structure _ -> 13
  | Get_list _ -> 14
  | Unify_variable _ -> 15
  | Unify_value _ -> 16
  | Unify_local_value _ -> 17
  | Unify_constant _ -> 18
  | Unify_integer _ -> 19
  | Unify_nil -> 20
  | Unify_void _ -> 21
  | Allocate _ -> 22
  | Deallocate -> 23
  | Call _ -> 24
  | Execute _ -> 25
  | Proceed -> 26
  | Jump _ -> 27
  | Halt_ok -> 28
  | Try _ -> 29
  | Retry _ -> 30
  | Trust _ -> 31
  | Switch_on_term _ -> 32
  | Switch_on_constant _ -> 33
  | Switch_on_integer _ -> 34
  | Switch_on_structure _ -> 35
  | Neck_cut -> 36
  | Get_level _ -> 37
  | Cut_to _ -> 38
  | Builtin _ -> 39
  | Check_ground _ -> 40
  | Check_indep _ -> 41
  | Alloc_parcall _ -> 42
  | Push_goal _ -> 43
  | Par_join -> 44
  | Goal_done -> 45
  | Check_size _ -> 46
  | Det_try _ -> 47
  | Det_retry _ -> 48
  | Det_trust _ -> 49
  | Get_structure_r _ -> 50
  | Get_list_r _ -> 51
  | Get_value_r _ -> 52
  | Get_structure_u _ -> 53
  | Get_list_u _ -> 54
  | Get_constant_u _ -> 55
  | Get_nil_u _ -> 56
  | Builtin_nt _ -> 57
  | Put_uninit _ -> 58
  | Get_integer_u _ -> 59
  | Get_value_u _ -> 60

let opcode_count = 61

let opcode_name = function
  | 0 -> "put_variable"
  | 1 -> "put_value"
  | 2 -> "put_unsafe_value"
  | 3 -> "put_constant"
  | 4 -> "put_integer"
  | 5 -> "put_nil"
  | 6 -> "put_structure"
  | 7 -> "put_list"
  | 8 -> "get_variable"
  | 9 -> "get_value"
  | 10 -> "get_constant"
  | 11 -> "get_integer"
  | 12 -> "get_nil"
  | 13 -> "get_structure"
  | 14 -> "get_list"
  | 15 -> "unify_variable"
  | 16 -> "unify_value"
  | 17 -> "unify_local_value"
  | 18 -> "unify_constant"
  | 19 -> "unify_integer"
  | 20 -> "unify_nil"
  | 21 -> "unify_void"
  | 22 -> "allocate"
  | 23 -> "deallocate"
  | 24 -> "call"
  | 25 -> "execute"
  | 26 -> "proceed"
  | 27 -> "jump"
  | 28 -> "halt"
  | 29 -> "try"
  | 30 -> "retry"
  | 31 -> "trust"
  | 32 -> "switch_on_term"
  | 33 -> "switch_on_constant"
  | 34 -> "switch_on_integer"
  | 35 -> "switch_on_structure"
  | 36 -> "neck_cut"
  | 37 -> "get_level"
  | 38 -> "cut_to"
  | 39 -> "builtin"
  | 40 -> "check_ground"
  | 41 -> "check_indep"
  | 42 -> "alloc_parcall"
  | 43 -> "push_goal"
  | 44 -> "par_join"
  | 45 -> "goal_done"
  | 46 -> "check_size"
  | 47 -> "det_try"
  | 48 -> "det_retry"
  | 49 -> "det_trust"
  | 50 -> "get_structure_r"
  | 51 -> "get_list_r"
  | 52 -> "get_value_r"
  | 53 -> "get_structure_u"
  | 54 -> "get_list_u"
  | 55 -> "get_constant_u"
  | 56 -> "get_nil_u"
  | 57 -> "builtin_nt"
  | 58 -> "put_uninit"
  | 59 -> "get_integer_u"
  | 60 -> "get_value_u"
  | n -> Printf.sprintf "op%d" n

let pp_reg fmt = function
  | X n -> Format.fprintf fmt "X%d" n
  | Y n -> Format.fprintf fmt "Y%d" n

let pp fmt i =
  let name = opcode_name (opcode i) in
  match i with
  | Put_variable (r, a) | Put_value (r, a) | Get_variable (r, a)
  | Get_value (r, a) | Get_value_r (r, a) | Get_value_u (r, a)
  | Put_uninit (r, a) ->
    Format.fprintf fmt "%s %a, A%d" name pp_reg r a
  | Put_unsafe_value (y, a) -> Format.fprintf fmt "%s Y%d, A%d" name y a
  | Put_constant (c, a) | Put_integer (c, a) | Put_structure (c, a)
  | Get_constant (c, a) | Get_integer (c, a) | Get_structure (c, a)
  | Get_structure_r (c, a) | Get_structure_u (c, a) | Get_constant_u (c, a)
  | Get_integer_u (c, a) ->
    Format.fprintf fmt "%s %d, A%d" name c a
  | Put_nil a | Put_list a | Get_nil a | Get_list a | Get_list_r a
  | Get_list_u a | Get_nil_u a ->
    Format.fprintf fmt "%s A%d" name a
  | Unify_variable r | Unify_value r | Unify_local_value r ->
    Format.fprintf fmt "%s %a" name pp_reg r
  | Unify_constant c | Unify_integer c -> Format.fprintf fmt "%s %d" name c
  | Unify_nil | Deallocate | Proceed | Halt_ok | Neck_cut | Par_join
  | Goal_done ->
    Format.pp_print_string fmt name
  | Unify_void n | Allocate n | Call n | Execute n | Jump n | Try n
  | Retry n | Trust n | Det_try n | Det_retry n | Det_trust n
  | Get_level n | Cut_to n ->
    Format.fprintf fmt "%s %d" name n
  | Alloc_parcall (k, join) ->
    Format.fprintf fmt "%s %d, join:%d" name k join
  | Switch_on_term { var_l; con_l; int_l; lis_l; str_l } ->
    Format.fprintf fmt "%s v:%d c:%d i:%d l:%d s:%d" name var_l con_l int_l
      lis_l str_l
  | Switch_on_constant (tbl, d)
  | Switch_on_integer (tbl, d)
  | Switch_on_structure (tbl, d) ->
    Format.fprintf fmt "%s [%s] else:%d" name
      (String.concat "; "
         (Array.to_list
            (Array.map (fun (k, l) -> Printf.sprintf "%d->%d" k l) tbl)))
      d
  | Builtin (b, n) | Builtin_nt (b, n) ->
    Format.fprintf fmt "%s %s/%d" name (Builtin.name b) n
  | Check_ground (r, l) -> Format.fprintf fmt "%s %a, else:%d" name pp_reg r l
  | Check_indep (r1, r2, l) ->
    Format.fprintf fmt "%s %a, %a, else:%d" name pp_reg r1 pp_reg r2 l
  | Check_size (r, k, l) ->
    Format.fprintf fmt "%s %a, %d, else:%d" name pp_reg r k l
  | Push_goal (slot, f, n) ->
    Format.fprintf fmt "%s slot:%d pred:%d/%d" name slot f n
