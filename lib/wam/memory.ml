(* The simulated shared memory.

   Word-addressed, chunk-allocated on demand (64K-word chunks) so large
   PE counts don't preallocate gigabytes.  Every [read]/[write] emits a
   tagged reference record to the machine's trace sink; [peek]/[poke]
   bypass tracing (used by answer decoding, debugging and tests). *)

let chunk_bits = 16
let chunk_words = 1 lsl chunk_bits

type t = {
  mutable chunks : int array option array;
  mutable sink : Trace.Sink.t;
}

let create ?(sink = Trace.Sink.null) () =
  { chunks = Array.make 64 None; sink }

let set_sink t sink = t.sink <- sink

let chunk_of t addr =
  let idx = addr lsr chunk_bits in
  if idx >= Array.length t.chunks then begin
    let bigger = Array.make (max (idx + 1) (2 * Array.length t.chunks)) None in
    Array.blit t.chunks 0 bigger 0 (Array.length t.chunks);
    t.chunks <- bigger
  end;
  match t.chunks.(idx) with
  | Some c -> c
  | None ->
    let c = Array.make chunk_words 0 in
    t.chunks.(idx) <- Some c;
    c

let peek t addr = (chunk_of t addr).(addr land (chunk_words - 1))

let poke t addr word =
  (chunk_of t addr).(addr land (chunk_words - 1)) <- word

let read t ~pe ~area addr =
  t.sink.Trace.Sink.emit
    { Trace.Ref_record.pe; addr; area; op = Trace.Ref_record.Read };
  peek t addr

let write t ~pe ~area addr word =
  t.sink.Trace.Sink.emit
    { Trace.Ref_record.pe; addr; area; op = Trace.Ref_record.Write };
  poke t addr word

(* Record an explicit synchronization event in the trace (no memory
   access is performed; [addr] names the word the edge hangs off). *)
let sync t ~pe ~kind addr =
  t.sink.Trace.Sink.emit_sync
    { Trace.Ref_record.spe = pe; saddr = addr; kind }

(* Generic term-cell access with the area derived from the address. *)
let read_auto t ~pe addr = read t ~pe ~area:(Layout.area_of_addr addr) addr

let write_auto t ~pe addr word =
  write t ~pe ~area:(Layout.area_of_addr addr) addr word
