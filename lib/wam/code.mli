(** The code area: a growable instruction table with a predicate entry
    map and backpatching support for forward labels.

    Instruction "addresses" are indices into the table; for tracing
    they map into the shared read-only code region. *)

type t

val create : unit -> t

val here : t -> int
(** Address of the next instruction to be emitted. *)

val emit : t -> Instr.t -> int
(** Append an instruction; returns its address. *)

val patch : t -> int -> Instr.t -> unit
(** Replace the instruction at an address (label backpatching). *)

val fetch : t -> int -> Instr.t
val length : t -> int

val set_entry : t -> int -> int -> unit
(** Bind a predicate (functor id) to its entry address. *)

val entry : t -> int -> int option

val iter_entries : t -> (int -> int -> unit) -> unit
(** [iter_entries t f] calls [f fid addr] for every predicate entry,
    in unspecified order. *)

val trace_addr : int -> int
(** Code-region address of an instruction, for trace records. *)

val pp : Symbols.t -> Format.formatter -> t -> unit
(** Disassembly listing. *)
