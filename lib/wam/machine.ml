(* Machine state: one shared memory plus per-worker (PE) register sets
   and stack-set pointers.

   Each worker owns the stack set carved out of its region by [Layout]:
   heap, local stack (environments, parcall frames), control stack
   (choice points, markers), trail, PDL, goal stack and message buffer.
   The X registers are processor registers: accessing them generates no
   memory traffic.

   Sentinel conventions: [-1] means "none" for e, b, and marker. *)

type status =
  | Idle (* no work assigned; may steal *)
  | Running
  | Waiting (* blocked at a par_join *)
  | Halted

(* Nested parallel-goal execution context (mirror of the in-memory
   input marker, cached to avoid re-reading it on every fail check). *)
type goal_ctx = {
  marker_addr : int;
  barrier_b : int; (* b at goal entry: backtracking floor *)
  floor_cst : int; (* control-stack floor (= marker end) *)
  floor_lst : int; (* local-stack floor at goal entry *)
  parcall : int; (* parcall frame address *)
  slot : int;
}

(* Entries of the worker's execution-context stack, in LIFO order of
   the events that created them.  The in-memory parcall frames and
   markers hold the authoritative data; this stack indexes them so a
   total failure (No_more_choices) can be dispatched exactly:
     Parcall_pending  alloc_parcall done, join not yet completed
                      (failure = the CGE's inline goal failed)
     Local_goal       a goal the parent popped from its own goal stack
                      and runs as a plain call (no marker)
     Section_ctx      a (stolen) goal run under an input marker       *)
type exec_entry =
  | Parcall_pending of int (* parcall frame address *)
  | Local_goal of { parcall : int; slot : int; resume : int; entry_b : int }
  | Section_ctx of goal_ctx

(* Worker-private shallow frame for determinacy-certified chains
   (det_try/det_retry/det_trust).  It plays the role of a choice point
   — enough state to retry the next alternative — but lives entirely
   in processor registers: no choice-point-area words are written, and
   conditional bindings go to [log] instead of the trail until the
   clause commits (reaches its first call/execute/proceed or parcall
   instruction), at which point surviving entries are flushed to the
   real trail. *)
type shallow = {
  mutable sh_active : bool;
  mutable sh_alt : int; (* code address of the next alternative *)
  mutable sh_nargs : int;
  sh_args : int array; (* saved A1..An *)
  mutable sh_e : int;
  mutable sh_cp : int;
  mutable sh_b0 : int;
  mutable sh_h : int;
  mutable sh_lst : int;
  mutable sh_log : int list; (* bound addresses predating the frame *)
  mutable sh_nt_log : int list;
  (* addresses bound by trail-elided (_u / builtin_nt) writes under
     this frame: restored on a shallow retry like [sh_log], but
     DROPPED at commit — the certificate says no live choice point or
     parcall floor predates the cell, so the flush is the write the
     elision deletes *)
}

type worker = {
  id : int;
  shallow : shallow;
  mutable p : int;
  mutable cp : int;
  mutable e : int;
  mutable b : int;
  mutable b0 : int;
  mutable h : int;
  mutable hb : int;
  mutable s : int;
  mutable tr : int;
  mutable pdl : int;
  mutable lst : int; (* local stack top *)
  mutable cst : int; (* control stack top *)
  mutable prot_lst : int; (* local-stack floor protected by live CPs *)
  mutable gs_top : int; (* goal stack: next free slot (grows up) *)
  mutable gs_bot : int; (* goal stack: oldest live frame *)
  mutable mode_write : bool;
  mutable no_trail : bool;
  (* set for the duration of a [builtin_nt] escape: [bind] skips the
     trail test and write (logging to [sh_nt_log] under an active
     shallow frame instead) *)
  x : int array; (* X/A registers (1-based use; 4096 of them) *)
  mutable nargs : int; (* arity at last call *)
  mutable status : status;
  mutable exec_stack : exec_entry list; (* nested execution contexts *)
  mutable barrier : int; (* b floor of current execution context *)
  mutable cst_floor : int;
  mutable lst_floor : int;
  mutable pf : int; (* current parcall frame, -1 when none *)
  mutable par_hb : int;
  (* heap floor imposed by the innermost live parcall frame: the
     recovery protocol untrails to the frame's saved TR, so bindings to
     heap cells older than this must stay trailed even after a cut or
     trust restores HB from a choice point that predates the frame *)
  mutable par_prot : int; (* local-stack floor, same role *)
  mutable failing_pf : int; (* parcall whose unwind we initiated, -1 *)
  mutable sections : (int * int * int * int) list;
  (* completed parallel-goal sections on this worker's stack set:
     (parcall frame, slot, trail start, trail end) *)
  (* statistics *)
  mutable instr_count : int;
  mutable idle_cycles : int;
  mutable wait_cycles : int;
  mutable max_h : int;
  mutable max_lst : int;
  mutable max_cst : int;
  mutable max_tr : int;
  mutable max_gs : int;
}

type t = {
  mem : Memory.t;
  code : Code.t;
  symbols : Symbols.t;
  workers : worker array;
  opcode_freq : int array;
  mutable steps : int; (* executed instructions, all workers *)
  mutable inferences : int; (* procedure calls (call/execute/goal starts) *)
  mutable parcalls : int; (* parcall frames allocated *)
  mutable goals_pushed : int;
  mutable goals_stolen : int; (* goals executed by a PE other than pusher *)
  mutable cp_created : int; (* choice points pushed (try) *)
  mutable cp_elided : int; (* certified chains entered shallow (det_try) *)
  mutable trail_elided : int; (* trail tests+writes skipped (_u, builtin_nt) *)
  mutable deref_skipped : int; (* deref loops skipped (_r, _u reads) *)
  mutable halted : bool;
  mutable failed : bool;
  out : Format.formatter; (* for write/1, nl/0 *)
  nil_atom : int;
}

exception Runtime_error of string

let runtime_error fmt =
  Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let make_shallow () =
  {
    sh_active = false;
    sh_alt = -1;
    sh_nargs = 0;
    sh_args = Array.make 256 0;
    sh_e = -1;
    sh_cp = 0;
    sh_b0 = -1;
    sh_h = 0;
    sh_lst = 0;
    sh_log = [];
    sh_nt_log = [];
  }

let make_worker id =
  {
    id;
    shallow = make_shallow ();
    p = 0;
    cp = 0;
    e = -1;
    b = -1;
    b0 = -1;
    h = Layout.heap_base id;
    hb = Layout.heap_base id;
    s = 0;
    tr = Layout.trail_base id;
    pdl = Layout.pdl_base id;
    lst = Layout.local_base id;
    cst = Layout.control_base id;
    prot_lst = Layout.local_base id;
    (* goal-stack words 0..2 hold the lock and the top/bottom pointers *)
    gs_top = Layout.goal_base id + 3;
    gs_bot = Layout.goal_base id + 3;
    mode_write = false;
    no_trail = false;
    x = Array.make 4096 0;
    nargs = 0;
    status = Idle;
    exec_stack = [];
    barrier = -1;
    cst_floor = Layout.control_base id;
    lst_floor = Layout.local_base id;
    pf = -1;
    par_hb = Layout.heap_base id;
    par_prot = Layout.local_base id;
    failing_pf = -1;
    sections = [];
    instr_count = 0;
    idle_cycles = 0;
    wait_cycles = 0;
    max_h = Layout.heap_base id;
    max_lst = Layout.local_base id;
    max_cst = Layout.control_base id;
    max_tr = Layout.trail_base id;
    max_gs = Layout.goal_base id;
  }

let create ?(out = Format.std_formatter) ?(sink = Trace.Sink.null)
    ~n_workers ~code ~symbols () =
  if n_workers < 1 || n_workers > 128 then
    invalid_arg "Machine.create: n_workers must be in 1..128";
  {
    mem = Memory.create ~sink ();
    code;
    symbols;
    workers = Array.init n_workers make_worker;
    opcode_freq = Array.make Instr.opcode_count 0;
    steps = 0;
    inferences = 0;
    parcalls = 0;
    goals_pushed = 0;
    goals_stolen = 0;
    cp_created = 0;
    cp_elided = 0;
    trail_elided = 0;
    deref_skipped = 0;
    halted = false;
    failed = false;
    out;
    nil_atom = Symbols.atom symbols "[]";
  }

let n_workers m = Array.length m.workers
let worker m i = m.workers.(i)

let total_instr m =
  Array.fold_left (fun acc w -> acc + w.instr_count) 0 m.workers

(* Storage high-water marks, in words, summed over workers. *)
let note_high_water w =
  if w.h > w.max_h then w.max_h <- w.h;
  if w.lst > w.max_lst then w.max_lst <- w.lst;
  if w.cst > w.max_cst then w.max_cst <- w.cst;
  if w.tr > w.max_tr then w.max_tr <- w.tr;
  if w.gs_top > w.max_gs then w.max_gs <- w.gs_top

let heap_used w = w.max_h - Layout.heap_base w.id
let local_used w = w.max_lst - Layout.local_base w.id
let control_used w = w.max_cst - Layout.control_base w.id
let trail_used w = w.max_tr - Layout.trail_base w.id
