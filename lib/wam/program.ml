(* A compiled program: database + symbol table + code + query entry.

   The query is compiled as a synthetic predicate whose arguments are
   the query's free variables, so the drivers can seed A1..Ak with
   fresh heap variables and decode the answers from them. *)

type t = {
  db : Prolog.Database.t;
  symbols : Symbols.t;
  code : Code.t;
  query_fid : int;
  query_vars : string list;
}

let query_name = "$query"

(* [of_database db ~query ()] adds the query as a clause to [db] and
   compiles everything.  [parallel = false] gives the sequential WAM
   baseline (CGEs read as plain conjunctions). *)
let of_database ?(parallel = true) ?det ?bind ?chains ?ops db ~query () =
  let q_term = Prolog.Parser.term_of_string ?ops query in
  let query_vars = Prolog.Term.vars q_term in
  let head =
    match query_vars with
    | [] -> Prolog.Term.Atom query_name
    | _ :: _ ->
      Prolog.Term.Struct
        (query_name, List.map (fun v -> Prolog.Term.Var v) query_vars)
  in
  Prolog.Database.assert_term db (Prolog.Term.Struct (":-", [ head; q_term ]));
  let symbols = Symbols.create () in
  let code = Compile.compile_db ~parallel ?det ?bind ?chains symbols db in
  let query_fid =
    Symbols.functor_ symbols query_name (List.length query_vars)
  in
  { db; symbols; code; query_fid; query_vars }

(* [prepare ~src ~query ()] parses and loads [src] first. *)
let prepare ?parallel ?det ?bind ?chains ?ops ~src ~query () =
  of_database ?parallel ?det ?bind ?chains ?ops
    (Prolog.Database.of_string ?ops src)
    ~query ()

let entry t =
  match Code.entry t.code t.query_fid with
  | Some addr -> addr
  | None -> invalid_arg "Program.entry: query was not compiled"

let arity t = List.length t.query_vars

let pp_listing fmt t = Code.pp t.symbols fmt t.code
