(** The WAM execution core: dereferencing, binding, trailing,
    unification, arithmetic, builtins, backtracking, and the
    sequential instruction semantics.  All memory accesses go through
    {!Memory} and are traced.

    The parallel instructions (alloc_parcall, push_goal, par_join,
    goal_done) are not handled here; the RAP-WAM simulator intercepts
    them before delegating to {!step_core}. *)

exception No_more_choices of Machine.worker
(** Raised by {!fail} when backtracking reaches the execution barrier:
    query failure for the root context, goal/inline failure inside a
    parallel context. *)

exception Parallel_instr of Instr.t
(** Raised by {!step_core} on RAP-WAM instructions. *)

val cp_extra : int
(** Choice-point frame size beyond the saved arguments. *)

(** {1 Memory access} (traced, charged to the worker) *)

val rd : Machine.t -> Machine.worker -> area:Trace.Area.t -> int -> int
val wr : Machine.t -> Machine.worker -> area:Trace.Area.t -> int -> int -> unit
val rd_auto : Machine.t -> Machine.worker -> int -> int
val wr_auto : Machine.t -> Machine.worker -> int -> int -> unit

val fetch_traced : Machine.t -> Machine.worker -> Instr.t
(** Fetch the instruction at [w.p], emitting a Code-area read. *)

(** {1 Terms on the heap} *)

val deref : Machine.t -> Machine.worker -> int -> int
val bind : Machine.t -> Machine.worker -> int -> int -> unit
val must_trail : Machine.worker -> int -> bool
val trail_push : Machine.t -> Machine.worker -> int -> unit
val untrail_to : Machine.t -> Machine.worker -> int -> unit
val hpush : Machine.t -> Machine.worker -> int -> int
val fresh_heap_var : Machine.t -> Machine.worker -> int

val unify : Machine.t -> Machine.worker -> int -> int -> bool
(** General unification; the current pair lives in registers, the PDL
    holds only extra sub-pairs of compound terms. *)

val is_ground : Machine.t -> Machine.worker -> int -> bool
val independent : Machine.t -> Machine.worker -> int -> int -> bool
val compare_terms : Machine.t -> Machine.worker -> int -> int -> int
val eval_arith : Machine.t -> Machine.worker -> int -> int

(** {1 Source-term conversion} *)

val decode : Machine.t -> Machine.worker -> int -> Prolog.Term.t
(** Cell to source term (untraced reads). *)

val encode :
  Machine.t -> Machine.worker -> (string, int) Hashtbl.t -> Prolog.Term.t ->
  int
(** Build a source term on the worker's heap; variables share bindings
    through the table (name -> heap address). *)

(** {1 Control} *)

val fail : Machine.t -> Machine.worker -> unit
(** Backtrack to the newest choice point — or, when the worker's
    shallow frame is active, restore its snapshot and continue at the
    frame's next alternative (no choice-point reads, never raises).
    @raise No_more_choices at the barrier. *)

(** {1 Shallow frames (determinacy-certified chains)} *)

val commits : Instr.t -> bool
(** Does this instruction end a certified clause's test prefix?
    (call/execute/proceed/halt, cut, and the parcall group; builtins
    deliberately stay inside the shallow window.) *)

val maybe_commit : Machine.t -> Machine.worker -> Instr.t -> unit
(** Fetch-time commit check: retire the active shallow frame (flushing
    its undo log to the trail where the trail condition demands it)
    when the fetched instruction {!commits}.  Called by {!step} and by
    the RAP-WAM simulator's own fetch path. *)

val abandon_shallow : Machine.t -> Machine.worker -> unit
(** Deactivate an active shallow frame without running its remaining
    alternatives, restoring the logged bindings (goal teardown). *)

val push_choice_point : Machine.t -> Machine.worker -> next_alt:int -> unit
val cut_to_level : Machine.t -> Machine.worker -> int -> unit
val allocate_env : Machine.t -> Machine.worker -> int -> unit
val deallocate_env : Machine.t -> Machine.worker -> unit

val exec_builtin : Machine.t -> Machine.worker -> Builtin.t -> int -> bool
(** Run a builtin with its arguments in A1..An; [false] = failure. *)

val step_core : Machine.t -> Machine.worker -> Instr.t -> unit
(** Execute one (sequential) instruction; [w.p] must already point
    past it.  @raise Parallel_instr on RAP-WAM instructions. *)

val step : Machine.t -> Machine.worker -> unit
(** Fetch (traced), count, advance, execute. *)

(** {1 Register access} *)

val get_reg : Machine.t -> Machine.worker -> Instr.reg -> int
val set_reg : Machine.t -> Machine.worker -> Instr.reg -> int -> unit
