(* Static verifier over compiled WAM/RAP-WAM code: a forward dataflow
   analysis from every predicate entry.  See the .mli for the rule
   catalogue.  The abstract state mirrors what the emulator guarantees
   at each point: which X/A registers and Y slots are defined, the
   environment, the open structure context, and the open parcall. *)

module IS = Set.Make (Int)

type diag = { addr : int; pred : string; rule : string; message : string }

let pp_diag fmt d =
  Format.fprintf fmt "%4d  [%s] %s: %s" d.addr d.pred d.rule d.message

(* Maximum X register the emulator's bank holds (exec.ml worker). *)
let x_bank = 4096

type env_state = No_env | Env of int

type state = {
  xs : IS.t; (* defined X/A registers *)
  ys : IS.t; (* defined Y slots *)
  levels : IS.t; (* Y slots holding a level saved by get_level *)
  env : env_state;
  nargs : int; (* registers a choice point would save/restore *)
  in_struct : bool; (* a get/put structure opened a unify context *)
  parcall : (int * IS.t) option; (* (pushed-goal count, slots seen) *)
  builtin_only : bool;
      (* the path since [allocate] has run only builtins and data
         instructions -- no [call] that could justify keeping the
         frame live.  Fuels the env-drift rule. *)
  in_chain : bool;
      (* the textually preceding instruction on this path was a
         try/retry (or det_try/det_retry), i.e. a live alternative
         frame covers the next chain instruction.  Fuels the
         orphan-chain rule: a retry/trust reached on a path without
         it would pop or update a choice point nobody pushed. *)
}

let entry_state ~nargs =
  {
    xs =
      List.fold_left (fun s i -> IS.add i s) IS.empty
        (List.init nargs (fun i -> i + 1));
    ys = IS.empty;
    levels = IS.empty;
    env = No_env;
    nargs;
    in_struct = false;
    parcall = None;
    builtin_only = false;
    in_chain = false;
  }

let equal_state a b =
  IS.equal a.xs b.xs && IS.equal a.ys b.ys
  && IS.equal a.levels b.levels && a.env = b.env
  && a.nargs = b.nargs && a.in_struct = b.in_struct
  && a.builtin_only = b.builtin_only
  && a.in_chain = b.in_chain
  && (match (a.parcall, b.parcall) with
     | None, None -> true
     | Some (k1, s1), Some (k2, s2) -> k1 = k2 && IS.equal s1 s2
     | Some _, None | None, Some _ -> false)

(* Join of two states reaching the same address.  Definedness merges
   by intersection; structural components (env size, nargs, parcall)
   must agree -- a mismatch is itself reported by the caller. *)
let merge_state a b =
  {
    xs = IS.inter a.xs b.xs;
    ys = IS.inter a.ys b.ys;
    levels = IS.inter a.levels b.levels;
    env = a.env;
    nargs = a.nargs;
    in_struct = a.in_struct && b.in_struct;
    (* any builtin-only path reaching the join keeps the drift alarm
       armed, so a leak reachable through such a path is still seen *)
    builtin_only = a.builtin_only || b.builtin_only;
    (* any chain-less path reaching a retry/trust must be reported *)
    in_chain = a.in_chain && b.in_chain;
    parcall =
      (match (a.parcall, b.parcall) with
      | Some (k, s1), Some (_, s2) -> Some (k, IS.inter s1 s2)
      | _, _ -> a.parcall);
  }

let structural_agree a b =
  a.env = b.env && a.nargs = b.nargs
  && (match (a.parcall, b.parcall) with
     | None, None -> true
     | Some (k1, _), Some (k2, _) -> k1 = k2
     | Some _, None | None, Some _ -> false)

let check symbols code =
  let len = Code.length code in
  let diags : (int * string, diag) Hashtbl.t = Hashtbl.create 16 in
  let report ~addr ~pred ~rule fmt =
    Printf.ksprintf
      (fun message ->
        let key = (addr, rule ^ ":" ^ message) in
        if not (Hashtbl.mem diags key) then
          Hashtbl.add diags key { addr; pred; rule; message })
      fmt
  in
  let states : (int, state) Hashtbl.t = Hashtbl.create 256 in
  let preds : (int, string) Hashtbl.t = Hashtbl.create 256 in
  let worklist = Queue.create () in
  let schedule ~pred addr st =
    if addr < 0 || addr >= len then
      report ~addr ~pred ~rule:"bad-target" "control target %d out of code"
        addr
    else begin
      if not (Hashtbl.mem preds addr) then Hashtbl.replace preds addr pred;
      match Hashtbl.find_opt states addr with
      | None ->
        Hashtbl.replace states addr st;
        Queue.add addr worklist
      | Some old ->
        if not (structural_agree old st) then
          report ~addr ~pred ~rule:"merge-mismatch"
            "conflicting environment/parcall state at control-flow join";
        let merged = merge_state old st in
        if not (equal_state old merged) then begin
          Hashtbl.replace states addr merged;
          Queue.add addr worklist
        end
    end
  in
  (* ---- structural pre-pass: retry/trust must continue a chain ---- *)
  for addr = 0 to len - 1 do
    match Code.fetch code addr with
    | Instr.Retry _ | Instr.Trust _ ->
      let chained =
        addr > 0
        &&
        match Code.fetch code (addr - 1) with
        | Instr.Try _ | Instr.Retry _ -> true
        | _ -> false
      in
      if not chained then
        report ~addr ~pred:"" ~rule:"broken-chain"
          "retry/trust not preceded by try/retry"
    | Instr.Det_retry _ | Instr.Det_trust _ ->
      (* det chains may not mix with plain ones: the shallow frame and
         the choice point have different layouts *)
      let chained =
        addr > 0
        &&
        match Code.fetch code (addr - 1) with
        | Instr.Det_try _ | Instr.Det_retry _ -> true
        | _ -> false
      in
      if not chained then
        report ~addr ~pred:"" ~rule:"broken-chain"
          "det_retry/det_trust not preceded by det_try/det_retry"
    | _ -> ()
  done;
  (* ---- dataflow ---- *)
  let run addr st =
    let pred =
      match Hashtbl.find_opt preds addr with Some p -> p | None -> ""
    in
    let report rule fmt = report ~addr ~pred ~rule fmt in
    let use_x st n =
      if n < 0 || n >= x_bank then
        report "bad-register" "X%d outside the register bank" n
      else if not (IS.mem n st.xs) then
        report "use-before-def" "X%d read before it is defined" n
    in
    let def_x st n =
      if n < 0 || n >= x_bank then begin
        report "bad-register" "X%d outside the register bank" n;
        st
      end
      else { st with xs = IS.add n st.xs }
    in
    let use_y st y =
      (match st.env with
      | No_env -> report "no-env" "Y%d read with no environment allocated" y
      | Env n ->
        if y < 0 || y >= n then
          report "bad-env-slot" "Y%d outside the %d-slot environment" y n
        else if not (IS.mem y st.ys) then
          report "use-before-def" "Y%d read before it is defined" y);
      ()
    in
    let def_y st y =
      match st.env with
      | No_env ->
        report "no-env" "Y%d written with no environment allocated" y;
        st
      | Env n ->
        if y < 0 || y >= n then begin
          report "bad-env-slot" "Y%d outside the %d-slot environment" y n;
          st
        end
        (* an ordinary write clobbers any level the slot held *)
        else { st with ys = IS.add y st.ys; levels = IS.remove y st.levels }
    in
    let use_reg st = function
      | Instr.X n -> use_x st n
      | Instr.Y y -> use_y st y
    in
    let def_reg st = function
      | Instr.X n -> def_x st n
      | Instr.Y y -> def_y st y
    in
    let use_args st arity =
      for i = 1 to arity do
        use_x st i
      done
    in
    let exit_struct st = { st with in_struct = false } in
    (* CGE conditions decide whether the parcall exists at all, so a
       check reached with the frame already allocated jumps to an
       else-branch that cannot unwind it *)
    let in_parcall_check st name =
      if st.parcall <> None then
        report "parcall-check"
          "%s inside an open parcall region: the else-branch cannot \
           unwind the frame" name
    in
    let need_struct st =
      if not st.in_struct then
        report "stray-unify" "unify instruction outside a structure context"
    in
    (* most instructions fall through *)
    let next st = [ (addr + 1, st) ] in
    let instr = Code.fetch code addr in
    (* shared-write discipline, from the per-instruction access
       metadata: writes to the cross-PE coordination areas are only
       legal between alloc_parcall (which creates the frame being
       written) and par_join.  goal_done writes them too, but through
       the stolen goal's check-in protocol, outside any frame the
       parent's code region shows. *)
    (match instr with
    | Instr.Alloc_parcall _ | Instr.Goal_done -> ()
    | i ->
      if st.parcall = None then
        List.iter
          (fun (a : Access.acc) ->
            match (a.Access.op, a.Access.area) with
            | ( Access.W,
                ( Trace.Area.Parcall_global | Trace.Area.Parcall_count
                | Trace.Area.Goal_frame ) ) ->
              report "shared-write-unframed"
                "%s writes %s outside an open parcall region"
                (Instr.opcode_name (Instr.opcode i))
                (Trace.Area.name a.Access.area)
            | _ -> ())
          (Access.of_instr i));
    (* orphan-chain: a mid-chain instruction reached on a path whose
       predecessor was not the matching try/retry — the frame it would
       update or pop was never pushed (the shape a buggy chain rewrite
       leaves behind) *)
    (match instr with
    | Instr.Retry _ | Instr.Trust _ | Instr.Det_retry _ | Instr.Det_trust _
      ->
      if not st.in_chain then
        report "orphan-chain"
          "%s reachable with no live preceding try on some path"
          (Instr.opcode_name (Instr.opcode instr))
    | _ -> ());
    let st = { st with in_chain = false } in
    match instr with
    (* ---- put group ---- *)
    | Instr.Put_variable (r, a) ->
      let st = exit_struct st in
      next (def_x (def_reg st r) a)
    | Instr.Put_value (r, a) ->
      let st = exit_struct st in
      use_reg st r;
      next (def_x st a)
    | Instr.Put_unsafe_value (y, a) ->
      let st = exit_struct st in
      use_y st y;
      next (def_x st a)
    | Instr.Put_constant (_, a)
    | Instr.Put_integer (_, a)
    | Instr.Put_nil a ->
      next (def_x (exit_struct st) a)
    | Instr.Put_structure (_, a) | Instr.Put_list a ->
      next { (def_x st a) with in_struct = true }
    (* ---- get group ---- *)
    | Instr.Get_variable (r, a) ->
      let st = exit_struct st in
      use_x st a;
      next (def_reg st r)
    | Instr.Get_value (r, a) ->
      let st = exit_struct st in
      use_reg st r;
      use_x st a;
      next st
    | Instr.Get_constant (_, a)
    | Instr.Get_integer (_, a)
    | Instr.Get_nil a ->
      let st = exit_struct st in
      use_x st a;
      next st
    | Instr.Get_structure (_, a) | Instr.Get_list a ->
      use_x st a;
      next { st with in_struct = true }
    (* ---- binding-certified specializations (lib/bindan) ---- *)
    | Instr.Put_uninit (r, a) ->
      let st = exit_struct st in
      next (def_x (def_reg st r) a)
    | Instr.Get_value_r (r, a) | Instr.Get_value_u (r, a) ->
      let st = exit_struct st in
      use_reg st r;
      use_x st a;
      next st
    | Instr.Get_constant_u (_, a) | Instr.Get_integer_u (_, a)
    | Instr.Get_nil_u a ->
      let st = exit_struct st in
      use_x st a;
      next st
    | Instr.Get_structure_r (_, a) | Instr.Get_list_r a
    | Instr.Get_structure_u (_, a) | Instr.Get_list_u a ->
      use_x st a;
      next { st with in_struct = true }
    | Instr.Builtin_nt (b, n) ->
      let st = exit_struct st in
      use_args st n;
      (* the trail-elision certificate only covers builtins whose
         bindings the binding analysis can see: =/2 and is/2.  Anything
         else here is a compiler-bridge bug (the not-unify trial-undo
         protocol in particular must never run untrailed) *)
      (match b with
      | Builtin.Unify | Builtin.Is -> ()
      | _ ->
        report "nt-builtin" "builtin_nt %s/%d: only =/2 and is/2 may run \
                             with trailing elided"
          (Builtin.name b) n);
      next st
    (* ---- unify group ---- *)
    | Instr.Unify_variable r ->
      need_struct st;
      next (def_reg st r)
    | Instr.Unify_value r | Instr.Unify_local_value r ->
      need_struct st;
      use_reg st r;
      next st
    | Instr.Unify_constant _ | Instr.Unify_integer _ | Instr.Unify_nil
    | Instr.Unify_void _ ->
      need_struct st;
      next st
    (* ---- control ---- *)
    | Instr.Allocate n ->
      let st = exit_struct st in
      if n < 0 then report "bad-env-size" "allocate %d" n;
      (match st.env with
      | Env _ -> report "double-allocate" "environment already allocated"
      | No_env -> ());
      next
        {
          st with
          env = Env n;
          ys = IS.empty;
          levels = IS.empty;
          builtin_only = true;
        }
    | Instr.Deallocate ->
      let st = exit_struct st in
      (match st.env with
      | No_env -> report "no-env" "deallocate with no environment"
      | Env _ -> ());
      (if addr + 1 < len then
         match Code.fetch code (addr + 1) with
         | Instr.Execute _ | Instr.Proceed -> ()
         | _ ->
           report "dangling-frame"
             "deallocate not immediately followed by execute/proceed");
      next
        {
          st with
          env = No_env;
          ys = IS.empty;
          levels = IS.empty;
          builtin_only = false;
        }
    | Instr.Call fid ->
      let st = exit_struct st in
      let arity = Symbols.functor_arity symbols fid in
      use_args st arity;
      if Code.entry code fid = None then
        report "undefined-predicate" "call to %s with no code entry"
          (Symbols.spec_string symbols fid);
      (* the callee clobbers the X bank; Y slots survive *)
      next { st with xs = IS.empty; builtin_only = false }
    | Instr.Execute fid ->
      let st = exit_struct st in
      let arity = Symbols.functor_arity symbols fid in
      use_args st arity;
      if Code.entry code fid = None then
        report "undefined-predicate" "execute of %s with no code entry"
          (Symbols.spec_string symbols fid);
      (match st.env with
      | Env n ->
        report "frame-leak" "execute with an environment allocated";
        if st.builtin_only then
          report "env-drift"
            "%d-slot environment reaches execute through a builtin-only \
             path (allocate with no matching deallocate)"
            n
      | No_env -> ());
      (match st.parcall with
      | Some _ -> report "open-parcall" "execute inside a parcall region"
      | None -> ());
      []
    | Instr.Proceed ->
      (match st.env with
      | Env n ->
        report "frame-leak" "proceed with an environment allocated";
        if st.builtin_only then
          report "env-drift"
            "%d-slot environment reaches proceed through a builtin-only \
             path (allocate with no matching deallocate)"
            n
      | No_env -> ());
      (match st.parcall with
      | Some _ -> report "open-parcall" "proceed inside a parcall region"
      | None -> ());
      []
    | Instr.Jump l -> [ (l, exit_struct st) ]
    | Instr.Halt_ok -> []
    (* ---- choice ---- *)
    | Instr.Try l | Instr.Retry l ->
      let st = exit_struct st in
      (* the chain continues; the target runs with A1..An restored *)
      (if addr + 1 < len then
         match Code.fetch code (addr + 1) with
         | Instr.Retry _ | Instr.Trust _ -> ()
         | _ ->
           report "broken-chain"
             "try/retry not followed by retry/trust");
      [
        (l, entry_state ~nargs:st.nargs);
        (addr + 1, { st with in_chain = true });
      ]
    | Instr.Trust l -> [ (l, entry_state ~nargs:(exit_struct st).nargs) ]
    | Instr.Det_try l | Instr.Det_retry l ->
      let st = exit_struct st in
      (if addr + 1 < len then
         match Code.fetch code (addr + 1) with
         | Instr.Det_retry _ | Instr.Det_trust _ -> ()
         | _ ->
           report "broken-chain"
             "det_try/det_retry not followed by det_retry/det_trust");
      [
        (l, entry_state ~nargs:st.nargs);
        (addr + 1, { st with in_chain = true });
      ]
    | Instr.Det_trust l -> [ (l, entry_state ~nargs:(exit_struct st).nargs) ]
    (* ---- indexing ---- *)
    | Instr.Switch_on_term { var_l; con_l; int_l; lis_l; str_l } ->
      let st = exit_struct st in
      use_x st 1;
      List.filter_map
        (fun l -> if l = -1 then None else Some (l, st))
        [ var_l; con_l; int_l; lis_l; str_l ]
    | Instr.Switch_on_constant (tbl, d)
    | Instr.Switch_on_integer (tbl, d)
    | Instr.Switch_on_structure (tbl, d) ->
      let st = exit_struct st in
      use_x st 1;
      let targets = d :: List.map snd (Array.to_list tbl) in
      List.filter_map
        (fun l -> if l = -1 then None else Some (l, st))
        targets
    (* ---- cut ---- *)
    | Instr.Neck_cut ->
      if st.parcall <> None then
        report "parcall-cut"
          "neck_cut inside an open parcall region would discard sibling \
           goals without the kill protocol";
      next (exit_struct st)
    | Instr.Get_level y ->
      let st = def_y (exit_struct st) y in
      next { st with levels = IS.add y st.levels }
    | Instr.Cut_to y ->
      let st = exit_struct st in
      use_y st y;
      if st.parcall <> None then
        report "parcall-cut"
          "cut_to Y%d inside an open parcall region would discard sibling \
           goals without the kill protocol" y;
      (* trail discipline: the slot must hold a level saved by
         get_level on every path, or the cut would unwind the trail
         to a garbage mark *)
      (match st.env with
      | Env n when y >= 0 && y < n && IS.mem y st.ys ->
        if not (IS.mem y st.levels) then
          report "trail-discipline"
            "cut_to Y%d: slot does not hold a level saved by get_level" y
      | _ -> ());
      next st
    (* ---- escapes ---- *)
    | Instr.Builtin (_, n) ->
      let st = exit_struct st in
      use_args st n;
      next st
    (* ---- RAP-WAM ---- *)
    | Instr.Check_ground (r, l) ->
      let st = exit_struct st in
      use_reg st r;
      in_parcall_check st "check_ground";
      if l < 0 || l >= len then
        report "bad-target" "check else-label %d out of code" l;
      [ (addr + 1, st); (l, st) ]
    | Instr.Check_indep (r1, r2, l) ->
      let st = exit_struct st in
      use_reg st r1;
      use_reg st r2;
      in_parcall_check st "check_indep";
      if l < 0 || l >= len then
        report "bad-target" "check else-label %d out of code" l;
      [ (addr + 1, st); (l, st) ]
    | Instr.Check_size (r, k, l) ->
      let st = exit_struct st in
      use_reg st r;
      in_parcall_check st "check_size";
      if k < 0 then report "bad-size" "check_size bound %d negative" k;
      if l < 0 || l >= len then
        report "bad-target" "check else-label %d out of code" l;
      [ (addr + 1, st); (l, st) ]
    | Instr.Alloc_parcall (k, join) ->
      let st = exit_struct st in
      if k < 0 then report "bad-parcall" "negative pushed-goal count %d" k;
      (if join < 0 || join >= len then
         report "bad-join" "parcall join %d out of code" join
       else
         match Code.fetch code join with
         | Instr.Par_join -> ()
         | i ->
           report "bad-join" "parcall join %d is %s, not par_join" join
             (Instr.opcode_name (Instr.opcode i)));
      (match st.parcall with
      | Some _ -> report "open-parcall" "alloc_parcall inside a parcall"
      | None -> ());
      next { st with parcall = Some (k, IS.empty) }
    | Instr.Push_goal (slot, fid, arity) ->
      let st = exit_struct st in
      use_args st arity;
      if Symbols.functor_arity symbols fid <> arity then
        report "bad-parcall" "push_goal arity %d disagrees with %s" arity
          (Symbols.spec_string symbols fid);
      if Code.entry code fid = None then
        report "undefined-predicate" "pushed goal %s has no code entry"
          (Symbols.spec_string symbols fid);
      (match st.parcall with
      | None ->
        report "bad-parcall" "push_goal outside an alloc_parcall region";
        next st
      | Some (k, seen) ->
        if slot < 0 || slot >= k then
          report "bad-parcall" "goal slot %d outside 0..%d" slot (k - 1);
        if IS.mem slot seen then
          report "bad-parcall" "goal slot %d pushed twice" slot;
        next { st with parcall = Some (k, IS.add slot seen) })
    | Instr.Par_join -> begin
      match st.parcall with
      | None ->
        report "bad-parcall" "par_join without alloc_parcall";
        next st
      | Some (k, seen) ->
        if IS.cardinal seen <> k then
          report "bad-parcall" "parcall joined with %d of %d goals pushed"
            (IS.cardinal seen) k;
        (* the parallel goals ran on arbitrary PEs: X bank is dead *)
        next { st with parcall = None; xs = IS.empty }
    end
    | Instr.Goal_done -> []
  in
  (* Seed: the fixed return points, then every predicate entry. *)
  schedule ~pred:"$halt" Compile.halt_addr (entry_state ~nargs:0);
  schedule ~pred:"$goal_done" Compile.goal_done_addr (entry_state ~nargs:0);
  let entries = ref [] in
  Code.iter_entries code (fun fid addr ->
      entries := (fid, addr) :: !entries);
  List.iter
    (fun (fid, addr) ->
      let nargs = Symbols.functor_arity symbols fid in
      schedule ~pred:(Symbols.spec_string symbols fid) addr
        (entry_state ~nargs))
    (List.sort compare !entries);
  while not (Queue.is_empty worklist) do
    let addr = Queue.pop worklist in
    match Hashtbl.find_opt states addr with
    | None -> ()
    | Some st ->
      let pred =
        match Hashtbl.find_opt preds addr with Some p -> p | None -> ""
      in
      List.iter (fun (a, st') -> schedule ~pred a st') (run addr st)
  done;
  (* ---- reachability ---- *)
  for addr = 0 to len - 1 do
    if not (Hashtbl.mem states addr) then
      report ~addr ~pred:"" ~rule:"unreachable"
        "instruction not reachable from any entry"
  done;
  Hashtbl.fold (fun _ d acc -> d :: acc) diags []
  |> List.sort (fun a b -> compare (a.addr, a.rule) (b.addr, b.rule))

let check_program (p : Program.t) = check p.Program.symbols p.Program.code
