(* Per-predicate dynamic profiling from the reference stream.

   The compiler lays each predicate's code out contiguously starting
   at its entry address, so sorting the entry map yields a partition
   of the code area into predicate-owned ranges.  The profiler then
   replays the trace: an instruction fetch (Code-area read) selects
   the owning predicate as the PE's current attribution target, and
   every data reference is charged to the predicate whose instruction
   the PE last fetched.  A fetch of the entry address itself is a call
   (backtracking re-enters predicates at clause or retry addresses,
   never at the entry, so entry fetches count procedure calls the same
   way the machine's inference counter does).

   Parallel traces interleave PEs; attribution is tracked per PE, so
   the scheme works unchanged for RAP-WAM runs.  References made by a
   PE before its first fetch (scheduler activity on an idle PE) land
   in the [other] bucket. *)

type counters = {
  fid : int;
  entry : int;  (** entry instruction index *)
  mutable calls : int;
  mutable instrs : int;  (** instruction fetches in this range *)
  mutable cp_created : int;  (** try fetches: choice points pushed *)
  mutable cp_elided : int;  (** det_try fetches: certified chains *)
  mutable trail_elided : int;
      (** fetches of binding-certified instructions that skip the
          trail check ([_u] gets, builtin_nt, put_uninit) *)
  mutable deref_skipped : int;
      (** fetches of [_r]/[_u] gets that skip the argument deref *)
  refs : int array;  (** data references, indexed by [Trace.Area.to_int] *)
}

type t = {
  symbols : Symbols.t;
  code : Code.t;  (** for decoding fetched instructions *)
  bounds : int array;  (** sorted entry indices, one per predicate *)
  owners : counters array;  (** owner of [bounds.(i) ..] *)
  other : int array;  (** data refs with no current predicate *)
  current : counters option array;  (** per-PE attribution target *)
}

let create symbols code =
  let entries = ref [] in
  Code.iter_entries code (fun fid addr -> entries := (addr, fid) :: !entries);
  let entries =
    Array.of_list (List.sort (fun (a, _) (b, _) -> compare a b) !entries)
  in
  {
    symbols;
    code;
    bounds = Array.map fst entries;
    owners =
      Array.map
        (fun (entry, fid) ->
          {
            fid;
            entry;
            calls = 0;
            instrs = 0;
            cp_created = 0;
            cp_elided = 0;
            trail_elided = 0;
            deref_skipped = 0;
            refs = Array.make Trace.Area.count 0;
          })
        entries;
    other = Array.make Trace.Area.count 0;
    current = Array.make (Trace.Ref_record.max_pe + 1) None;
  }

(* Greatest entry <= idx, by binary search; None below the first. *)
let owner t idx =
  let n = Array.length t.bounds in
  if n = 0 || idx < t.bounds.(0) then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let m = (!lo + !hi + 1) / 2 in
      if t.bounds.(m) <= idx then lo := m else hi := m - 1
    done;
    Some t.owners.(!lo)
  end

let on_record t (r : Trace.Ref_record.t) =
  if r.Trace.Ref_record.area = Trace.Area.Code then begin
    let idx = r.Trace.Ref_record.addr - Layout.code_base in
    match owner t idx with
    | Some p ->
      t.current.(r.Trace.Ref_record.pe) <- Some p;
      p.instrs <- p.instrs + 1;
      if idx = p.entry then p.calls <- p.calls + 1;
      if idx >= 0 && idx < Code.length t.code then begin
        match Code.fetch t.code idx with
        | Instr.Try _ -> p.cp_created <- p.cp_created + 1
        | Instr.Det_try _ -> p.cp_elided <- p.cp_elided + 1
        | Instr.Get_structure_r _ | Instr.Get_list_r _ | Instr.Get_value_r _
          ->
          p.deref_skipped <- p.deref_skipped + 1
        | Instr.Get_structure_u _ | Instr.Get_list_u _
        | Instr.Get_constant_u _ | Instr.Get_integer_u _ | Instr.Get_nil_u _ ->
          p.deref_skipped <- p.deref_skipped + 1;
          p.trail_elided <- p.trail_elided + 1
        | Instr.Builtin_nt _ | Instr.Put_uninit _ | Instr.Get_value_u _ ->
          p.trail_elided <- p.trail_elided + 1
        | _ -> ()
      end
    | None -> t.current.(r.Trace.Ref_record.pe) <- None
  end
  else begin
    let k = Trace.Area.to_int r.Trace.Ref_record.area in
    match t.current.(r.Trace.Ref_record.pe) with
    | Some p -> p.refs.(k) <- p.refs.(k) + 1
    | None -> t.other.(k) <- t.other.(k) + 1
  end

let sink t : Trace.Sink.t =
  { Trace.Sink.emit = on_record t; emit_sync = (fun _ -> ()) }

let data_refs (c : counters) = Array.fold_left ( + ) 0 c.refs
let spec t (c : counters) = Symbols.spec_string t.symbols c.fid

(* Predicates that did any work, busiest first; name order breaks
   ties so output is deterministic. *)
let ranked t =
  let active =
    List.filter
      (fun c -> c.calls > 0 || c.instrs > 0 || data_refs c > 0)
      (Array.to_list t.owners)
  in
  List.sort
    (fun a b ->
      match compare (data_refs b) (data_refs a) with
      | 0 -> (
        match compare b.instrs a.instrs with
        | 0 -> compare (spec t a) (spec t b)
        | n -> n)
      | n -> n)
    active

let pp fmt t =
  Format.fprintf fmt "%-22s %8s %10s %10s %8s %8s %8s %8s  %s@." "predicate"
    "calls" "instrs" "data refs" "cp push" "cp elide" "tr elide" "dr skip"
    "top areas";
  let areas_of c =
    let pairs =
      List.filter
        (fun (_, n) -> n > 0)
        (List.map
           (fun a -> (Trace.Area.name a, c.refs.(Trace.Area.to_int a)))
           Trace.Area.all)
    in
    let pairs = List.sort (fun (_, a) (_, b) -> compare b a) pairs in
    String.concat ", "
      (List.map
         (fun (n, v) -> Printf.sprintf "%s %d" n v)
         (List.filteri (fun i _ -> i < 3) pairs))
  in
  List.iter
    (fun c ->
      Format.fprintf fmt "%-22s %8d %10d %10d %8d %8d %8d %8d  %s@."
        (spec t c) c.calls c.instrs (data_refs c) c.cp_created c.cp_elided
        c.trail_elided c.deref_skipped (areas_of c))
    (ranked t);
  let other = Array.fold_left ( + ) 0 t.other in
  if other > 0 then
    Format.fprintf fmt "%-22s %8s %10s %10d@." "(scheduler)" "-" "-" other

let to_json buf t =
  Buffer.add_string buf "[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"predicate\": %S, \"calls\": %d, \"instrs\": %d, \
            \"cp_created\": %d, \"cp_elided\": %d, \
            \"trail_elided\": %d, \"deref_skipped\": %d, \"refs\": {"
           (spec t c) c.calls c.instrs c.cp_created c.cp_elided
           c.trail_elided c.deref_skipped);
      let first = ref true in
      List.iter
        (fun a ->
          let n = c.refs.(Trace.Area.to_int a) in
          if n > 0 then begin
            if not !first then Buffer.add_string buf ", ";
            first := false;
            Buffer.add_string buf
              (Printf.sprintf "%S: %d" (Trace.Area.name a) n)
          end)
        Trace.Area.all;
      Buffer.add_string buf "}}")
    (ranked t);
  Buffer.add_string buf "]"
