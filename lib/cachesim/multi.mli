(** The multiprocessor coherent-cache simulation: one cache per PE, a
    shared bus, and a line directory used to decide sharing.
    Processes packed RAP-WAM traces and produces traffic statistics
    per protocol (paper, §3.2).

    Domain-safety: all simulator state (caches, directory, counters)
    lives in the [t] made by {!create} — there are no module-level
    mutables — so each simulation is confined to the domain that
    created it, and independent simulations over the same (read-only)
    trace buffer can run on separate domains concurrently.  That is
    how [Engine.Sweep] fans a grid out.  A single [t] must not be
    shared across domains. *)

type t

val create :
  ?locality_override:bool ->
  ?area_locality:(Trace.Area.t -> Trace.Area.locality) ->
  n_pes:int -> Protocol.config -> t
(** [locality_override] forces every reference's hybrid tag to Global
    ([Some true]) or Local ([Some false]); used by the tag ablation.
    [area_locality] replaces the paper's Table 1 per-area tags with a
    custom table (e.g. refmap's statically predicted shareability
    tags); [locality_override] wins when both are given. *)

val reference : t -> Trace.Ref_record.t -> unit
(** Process one reference. *)

val run_trace : t -> Trace.Sink.Buffer_sink.t -> unit
(** Process a whole packed trace buffer (hot path). *)

val stats : t -> Metrics.t

val simulate :
  ?line_words:int -> ?write_allocate:bool -> ?locality_override:bool ->
  ?area_locality:(Trace.Area.t -> Trace.Area.locality) ->
  kind:Protocol.kind -> cache_words:int -> n_pes:int ->
  Trace.Sink.Buffer_sink.t -> Metrics.t
(** One (protocol, size) point over a trace.  [write_allocate]
    defaults to {!Protocol.paper_allocate_policy}. *)

val simulate_best :
  ?line_words:int -> ?locality_override:bool ->
  ?area_locality:(Trace.Area.t -> Trace.Area.locality) ->
  kind:Protocol.kind ->
  cache_words:int -> n_pes:int -> Trace.Sink.Buffer_sink.t ->
  Metrics.t * bool
(** Try both allocation policies and keep the lower-traffic one (the
    paper's per-point selection); returns the winning policy too. *)
