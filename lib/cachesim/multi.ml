(* The multiprocessor coherent-cache simulation: one cache per PE, a
   shared bus, and a line directory (who holds what) used to decide
   sharing.  Processes packed RAP-WAM traces and produces traffic
   statistics per protocol (paper, §3.2).

   Bus accounting, in words:
     line fill                      L
     dirty-victim write-back       L
     remote-dirty flush on a miss  L
     write-through / update word   1
     explicit invalidation          1
   Invalidations that piggy-back on a memory write (write-through and
   hybrid global writes are observed by snooping) cost nothing extra. *)

type t = {
  config : Protocol.config;
  n_pes : int;
  caches : Cache.t array;
  holders : (int, int) Hashtbl.t; (* line -> bitmask of caches *)
  stats : Metrics.t;
  global_area : bool array; (* Area int -> locality = Global? *)
}

(* [locality_override]: force every reference's hybrid tag to Global
   (Some true) or Local (Some false); used by the tag ablation.
   [area_locality]: per-area tag table (e.g. refmap's predicted
   shareability tags) replacing the paper's Table 1 defaults;
   [locality_override] wins when both are given. *)
let create ?locality_override ?area_locality ~n_pes
    (config : Protocol.config) =
  if n_pes < 1 || n_pes > 62 then invalid_arg "Multi.create: 1..62 PEs";
  let lines = config.Protocol.cache_words / config.Protocol.line_words in
  let global_area =
    match (locality_override, area_locality) with
    | Some v, _ -> Array.make Trace.Area.count v
    | None, Some tag ->
      Array.init Trace.Area.count (fun i ->
          tag (Trace.Area.of_int i) = Trace.Area.Global)
    | None, None ->
      Array.init Trace.Area.count (fun i ->
          Trace.Area.locality (Trace.Area.of_int i) = Trace.Area.Global)
  in
  {
    config;
    n_pes;
    caches = Array.init n_pes (fun _ -> Cache.create ~lines);
    holders = Hashtbl.create 4096;
    stats = Metrics.create ();
    global_area;
  }

let holder_mask t line =
  match Hashtbl.find_opt t.holders line with Some m -> m | None -> 0

let set_holder t line pe =
  Hashtbl.replace t.holders line (holder_mask t line lor (1 lsl pe))

let clear_holder t line pe =
  let m = holder_mask t line land lnot (1 lsl pe) in
  if m = 0 then Hashtbl.remove t.holders line
  else Hashtbl.replace t.holders line m

let others_hold t line pe = holder_mask t line land lnot (1 lsl pe) <> 0

let line_words t = t.config.Protocol.line_words

(* Write back a remotely-held dirty copy (flush before a fill). *)
let flush_remote_dirty t line pe =
  let m = holder_mask t line in
  for other = 0 to t.n_pes - 1 do
    if other <> pe && m land (1 lsl other) <> 0 then begin
      match Cache.find t.caches.(other) line with
      | Some node when node.Cache.dirty ->
        node.Cache.dirty <- false;
        t.stats.Metrics.writebacks <- t.stats.Metrics.writebacks + 1;
        t.stats.Metrics.bus_words <- t.stats.Metrics.bus_words + line_words t
      | Some _ | None -> ()
    end
  done

(* Fetch a line into [pe]'s cache; handles victim write-back and the
   directory. *)
let fill t pe line ~dirty ~coherent =
  if coherent then flush_remote_dirty t line pe;
  t.stats.Metrics.fills <- t.stats.Metrics.fills + 1;
  t.stats.Metrics.bus_words <- t.stats.Metrics.bus_words + line_words t;
  (match Cache.insert t.caches.(pe) line ~dirty with
  | Some (victim, victim_dirty) ->
    clear_holder t victim pe;
    if victim_dirty then begin
      t.stats.Metrics.writebacks <- t.stats.Metrics.writebacks + 1;
      t.stats.Metrics.bus_words <- t.stats.Metrics.bus_words + line_words t
    end
  | None -> ());
  set_holder t line pe

let invalidate_others t line pe ~count_word =
  if others_hold t line pe then begin
    if count_word then begin
      t.stats.Metrics.invalidations <- t.stats.Metrics.invalidations + 1;
      t.stats.Metrics.bus_words <- t.stats.Metrics.bus_words + 1
    end;
    let m = holder_mask t line in
    for other = 0 to t.n_pes - 1 do
      if other <> pe && m land (1 lsl other) <> 0 then begin
        ignore (Cache.invalidate t.caches.(other) line);
        clear_holder t line other
      end
    done
  end

let write_through_word t =
  t.stats.Metrics.wt_words <- t.stats.Metrics.wt_words + 1;
  t.stats.Metrics.bus_words <- t.stats.Metrics.bus_words + 1

let update_word t =
  t.stats.Metrics.updates <- t.stats.Metrics.updates + 1;
  t.stats.Metrics.bus_words <- t.stats.Metrics.bus_words + 1

(* ------------------------------------------------------------------ *)

let check_pe t pe =
  if pe >= t.n_pes then
    invalid_arg
      (Printf.sprintf
         "Cachesim.Multi: reference by PE %d but only %d caches (was the \
          trace produced with more workers?)"
         pe t.n_pes)

let read t pe line =
  check_pe t pe;
  t.stats.Metrics.reads <- t.stats.Metrics.reads + 1;
  let c = t.caches.(pe) in
  match Cache.find c line with
  | Some node -> Cache.touch c node
  | None ->
    t.stats.Metrics.read_misses <- t.stats.Metrics.read_misses + 1;
    let coherent = t.config.Protocol.kind <> Protocol.Copyback in
    fill t pe line ~dirty:false ~coherent

let write t pe line ~global =
  check_pe t pe;
  t.stats.Metrics.writes <- t.stats.Metrics.writes + 1;
  let c = t.caches.(pe) in
  let cfg = t.config in
  let hit = Cache.find c line in
  (match hit with
  | Some node -> Cache.touch c node
  | None -> t.stats.Metrics.write_misses <- t.stats.Metrics.write_misses + 1);
  match cfg.Protocol.kind with
  | Protocol.Copyback -> begin
    match hit with
    | Some node -> node.Cache.dirty <- true
    | None ->
      if cfg.Protocol.write_allocate then fill t pe line ~dirty:true ~coherent:false
      else write_through_word t
  end
  | Protocol.Write_through -> begin
    (* every write goes to memory; snooping invalidates remote copies *)
    write_through_word t;
    invalidate_others t line pe ~count_word:false;
    match hit with
    | Some _ -> ()
    | None ->
      if cfg.Protocol.write_allocate then fill t pe line ~dirty:false ~coherent:true
  end
  | Protocol.Write_in_broadcast -> begin
    match hit with
    | Some node ->
      if others_hold t line pe then
        invalidate_others t line pe ~count_word:true;
      node.Cache.dirty <- true
    | None ->
      if cfg.Protocol.write_allocate then begin
        (* read-with-intent-to-modify: the fill transaction also
           invalidates the other copies *)
        fill t pe line ~dirty:true ~coherent:true;
        invalidate_others t line pe ~count_word:false
      end
      else begin
        write_through_word t;
        invalidate_others t line pe ~count_word:false
      end
  end
  | Protocol.Write_through_broadcast -> begin
    match hit with
    | Some node ->
      if others_hold t line pe then begin
        (* broadcast the word to the other holders and memory *)
        update_word t;
        node.Cache.dirty <- false
      end
      else node.Cache.dirty <- true
    | None ->
      if cfg.Protocol.write_allocate then begin
        fill t pe line ~dirty:false ~coherent:true;
        if others_hold t line pe then update_word t
        else begin
          match Cache.find c line with
          | Some node -> node.Cache.dirty <- true
          | None -> assert false
        end
      end
      else update_word t (* one broadcast serves caches and memory *)
  end
  | Protocol.Hybrid ->
    if global then begin
      (* potentially shared: write through; snooping keeps copies
         coherent at no extra bus cost *)
      write_through_word t;
      invalidate_others t line pe ~count_word:false;
      if hit = None && cfg.Protocol.write_allocate then
        fill t pe line ~dirty:false ~coherent:true
    end
    else begin
      (* local: copy back *)
      match hit with
      | Some node -> node.Cache.dirty <- true
      | None ->
        if cfg.Protocol.write_allocate then fill t pe line ~dirty:true ~coherent:true
        else write_through_word t
    end

(* ------------------------------------------------------------------ *)

let reference t (r : Trace.Ref_record.t) =
  let line = r.Trace.Ref_record.addr / line_words t in
  match r.Trace.Ref_record.op with
  | Trace.Ref_record.Read -> read t r.Trace.Ref_record.pe line
  | Trace.Ref_record.Write ->
    write t r.Trace.Ref_record.pe line
      ~global:(t.global_area.(Trace.Area.to_int r.Trace.Ref_record.area))

(* Hot path: run a whole packed trace buffer.  Sync events cost no
   memory traffic (they annotate ordering, not accesses): skip them. *)
let run_trace t buf =
  let lw = line_words t in
  Trace.Sink.Buffer_sink.iter_packed
    (fun word ->
      let area_i = (word lsr 1) land 0x1f in
      if area_i < Trace.Ref_record.sync_tag_base then begin
        let is_write = word land 1 = 1 in
        let pe = (word lsr 6) land 0xff in
        let addr = word lsr Trace.Ref_record.addr_bits_shift in
        let line = addr / lw in
        if is_write then write t pe line ~global:t.global_area.(area_i)
        else read t pe line
      end)
    buf

let stats t = t.stats

(* Convenience: simulate one (protocol, size) point over a trace. *)
let simulate ?line_words:(lw = 4) ?write_allocate ?locality_override
    ?area_locality ~kind ~cache_words ~n_pes buf =
  let write_allocate =
    match write_allocate with
    | Some w -> w
    | None -> Protocol.paper_allocate_policy ~kind ~cache_words
  in
  let config =
    Protocol.make ~line_words:lw ~write_allocate ~kind ~cache_words ()
  in
  let t = create ?locality_override ?area_locality ~n_pes config in
  run_trace t buf;
  stats t

(* The paper selected, per cache size, the allocation policy that
   produced the lowest traffic; [simulate_best] does that selection
   per point. *)
let simulate_best ?line_words ?locality_override ?area_locality ~kind
    ~cache_words ~n_pes buf =
  let a =
    simulate ?line_words ?locality_override ?area_locality
      ~write_allocate:true ~kind ~cache_words ~n_pes buf
  in
  let b =
    simulate ?line_words ?locality_override ?area_locality
      ~write_allocate:false ~kind ~cache_words ~n_pes buf
  in
  if Metrics.traffic_ratio a <= Metrics.traffic_ratio b then (a, true)
  else (b, false)
